// §3.8 robustness: CN/DN failures injected mid-run must not break delivery.
#include <gtest/gtest.h>

#include "analysis/measurement.hpp"
#include "core/simulation.hpp"

namespace netsession {
namespace {

SimulationConfig config_for(std::uint64_t seed) {
    SimulationConfig config;
    config.seed = seed;
    config.peers = 600;
    config.behavior.warmup = sim::days(1.0);
    config.behavior.window = sim::days(3.0);
    config.behavior.downloads_per_peer_per_month = 25.0;
    config.as_graph.total_ases = 200;
    return config;
}

TEST(Robustness, CnAndDnFailuresDoNotStopDeliveries) {
    Simulation s(config_for(7));
    auto& plane = s.control_plane();
    auto& simulator = s.simulator();

    // Routine rolling restart: all CNs and DNs bounce mid-window ("when a
    // new CN/DN software version is released, all CNs and DNs are restarted
    // in a short timeframe, and this does not negatively affect the
    // service", §3.8).
    simulator.schedule_at(sim::SimTime{} + sim::days(2.0), [&plane, &simulator] {
        for (auto& cn : plane.cns()) plane.fail_cn(cn->id());
        for (auto& dn : plane.dns()) plane.fail_dn(dn->id());
        simulator.schedule_after(sim::minutes(2.0), [&plane] {
            for (auto& cn : plane.cns()) plane.restart_cn(cn->id());
            for (auto& dn : plane.dns()) plane.restart_dn(dn->id());
        });
    });

    s.run();

    const auto outcomes = analysis::outcome_stats(s.trace());
    EXPECT_GT(outcomes.all.n, 50);
    EXPECT_GT(outcomes.all.completed, 0.8)
        << "failures cause no system-failure wave; downloads fall back to the edge";
    EXPECT_LT(outcomes.all.failed_system, 0.02);

    // After the restart, peers re-registered their content via RE-ADD and
    // p2p kept working: transfers exist from the post-restart era.
    bool post_restart_transfer = false;
    for (const auto& t : s.trace().transfers())
        if (t.time > sim::SimTime{} + sim::days(2.2)) post_restart_transfer = true;
    EXPECT_TRUE(post_restart_transfer);
}

TEST(Robustness, PermanentControlPlaneOutageStillDelivers) {
    auto config = config_for(8);
    config.peers = 400;
    Simulation s(config);
    auto& plane = s.control_plane();

    // The control plane dies halfway and never comes back: "even if the
    // entire CN and DN infrastructure were to fail, the peers would simply
    // fall back to retrieving content from the CDN infrastructure" (§3.8).
    // (Downloads finished during the outage also cannot be CN-reported, so
    // the check below uses the driver's completion counter and the edge
    // servers' trusted byte counts, not the CN trace.)
    Bytes edge_bytes_at_outage = 0;
    std::int64_t finished_at_outage = 0;
    s.simulator().schedule_at(sim::SimTime{} + sim::days(2.0), [&] {
        for (auto& cn : plane.cns()) plane.fail_cn(cn->id());
        for (auto& dn : plane.dns()) plane.fail_dn(dn->id());
        edge_bytes_at_outage = s.edges().total_bytes_served();
        finished_at_outage = s.driver().downloads_finished();
    });
    s.run();

    EXPECT_GT(s.driver().downloads_finished(), finished_at_outage)
        << "downloads keep finishing without any control plane";
    EXPECT_GT(s.edges().total_bytes_served(), edge_bytes_at_outage)
        << "the edge serves everything during the outage";
}

TEST(Robustness, SingleDnLossIsRecoveredByReAdd) {
    Simulation s(config_for(9));
    auto& plane = s.control_plane();
    std::size_t dn_index = 0;
    // Pick the busiest DN at failure time.
    s.simulator().schedule_at(sim::SimTime{} + sim::days(2.0), [&plane, &dn_index] {
        std::size_t best = 0;
        for (std::size_t i = 0; i < plane.dns().size(); ++i)
            if (plane.dns()[i]->registration_count() >
                plane.dns()[best]->registration_count())
                best = i;
        dn_index = best;
        plane.fail_dn(plane.dns()[best]->id());
        plane.restart_dn(plane.dns()[best]->id());
    });
    s.run();
    // By the end of the window the DN has directory state again.
    EXPECT_GT(plane.dns()[dn_index]->registration_count(), 0u)
        << "RE-ADD repopulated the restarted DN";
}

}  // namespace
}  // namespace netsession
