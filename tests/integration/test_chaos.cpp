// Fault-injection integration: FaultPlan runs end to end — clients survive
// STUN blackouts, mass churn, and edge outages, the degradation telemetry
// explains what happened, and a faulted run is still byte-deterministic.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "analysis/measurement.hpp"
#include "analysis/recovery.hpp"
#include "core/scenario_io.hpp"
#include "core/simulation.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_spec.hpp"
#include "trace/serialize.hpp"

namespace netsession {
namespace {

SimulationConfig chaos_config(std::uint64_t seed) {
    SimulationConfig config;
    config.seed = seed;
    config.peers = 600;
    config.behavior.warmup = sim::days(1.0);
    config.behavior.window = sim::days(3.0);
    config.behavior.downloads_per_peer_per_month = 25.0;
    config.as_graph.total_ases = 200;
    return config;
}

void add_fault(SimulationConfig& config, const std::string& spec) {
    auto event = fault::parse_fault_event(spec);
    ASSERT_TRUE(event.ok()) << spec << ": " << (event.ok() ? "" : event.error().message);
    config.faults.events.push_back(event.value());
}

TEST(Chaos, StunBlackoutDoesNotWedgeStartup) {
    // A permanent STUN blackout from t=0: probes never answer. start() must
    // not wedge waiting — after stun_timeout_s the client assumes the most
    // conservative NAT class and logs in anyway (§3.8 graceful degradation).
    auto config = chaos_config(501);
    add_fault(config, "stun_blackout at=0");
    Simulation s(config);
    s.run();

    EXPECT_GT(s.trace().logins().size(), 500u) << "clients still log in without STUN";
    const auto outcomes = analysis::outcome_stats(s.trace());
    EXPECT_GT(outcomes.all.n, 50);
    EXPECT_GT(outcomes.all.completed, 0.7) << "downloads proceed under conservative NAT";

    const auto d = analysis::degradation_stats(s.trace());
    EXPECT_GT(d.stun_timeouts, 0) << "the fallback path must actually have fired";

    bool conservative = false;
    for (const auto& client : s.driver().clients())
        if (client->running() && client->conservative_nat()) conservative = true;
    EXPECT_TRUE(conservative) << "running clients carry the conservative NAT classification";
    EXPECT_EQ(s.faults().faults_applied(), 1);
    EXPECT_EQ(s.faults().faults_restored(), 0) << "permanent fault never restores";
}

TEST(Chaos, MassChurnDownloadsStillComplete) {
    // Mid-transfer uploader churn: a flash crowd pulls half the population
    // into simultaneous downloads of one object, then 50% of running peers
    // crash with no goodbye while those transfers are in flight. Downloaders
    // notice via the stall watchdog, drop the dead sources, and finish from
    // the remaining swarm or the edge.
    auto config = chaos_config(502);
    add_fault(config, "flash_crowd at=2 fraction=0.5");
    add_fault(config, "mass_churn at=2.003 fraction=0.5");
    Simulation s(config);
    s.run();
    EXPECT_EQ(s.faults().faults_applied(), 2);

    const auto outcomes = analysis::outcome_stats(s.trace());
    EXPECT_GT(outcomes.all.n, 50);
    EXPECT_GT(outcomes.all.completed, 0.65) << "churn must not collapse delivery";
    EXPECT_LT(outcomes.all.failed_system, 0.05);

    // (Peer-stall telemetry under churn is pinned deterministically by
    // Client.UploaderChurnMidTransferFallsBackAndCompletes — at this scale
    // and offload level, a statistical assertion on it would be flaky.)

    // Crashed machines come back at their next session: activity exists
    // after the crash point.
    bool post_churn_login = false;
    for (const auto& l : s.trace().logins())
        if (l.time > sim::SimTime{} + sim::days(2.2)) post_churn_login = true;
    EXPECT_TRUE(post_churn_login);
}

TEST(Chaos, EdgeOutageStallsAreDetectedAndDeliveryHolds) {
    // Every edge server goes dark for ~2.4 hours mid-window. In-flight edge
    // transfers die silently; the per-download watchdog must notice the dead
    // flows, count edge stalls, and keep retrying (capped backoff) until the
    // restart — p2p keeps flowing meanwhile.
    auto config = chaos_config(503);
    add_fault(config, "edge_outage at=2 duration=0.1 region=all");
    Simulation s(config);
    s.run();

    const auto outcomes = analysis::outcome_stats(s.trace());
    EXPECT_GT(outcomes.all.n, 50);
    EXPECT_GT(outcomes.all.completed, 0.65) << "outage is short; deliveries recover";

    const auto d = analysis::degradation_stats(s.trace());
    EXPECT_GT(d.edge_stalls, 0) << "dead edge flows must be detected as stalls";
    EXPECT_EQ(s.faults().faults_applied(), 1);
    EXPECT_EQ(s.faults().faults_restored(), 1);
}

TEST(Chaos, FaultedRunIsByteIdenticalForSameSeedAndPlan) {
    // The determinism contract extends to fault plans: same seed + same plan
    // ⇒ byte-identical serialized traces (ISSUE 2 acceptance).
    auto config = chaos_config(504);
    config.peers = 300;
    add_fault(config, "edge_outage at=1.5 duration=0.2 region=all");
    add_fault(config, "stun_blackout at=1 duration=1");
    add_fault(config, "mass_churn at=2 fraction=0.3");
    add_fault(config, "region_partition at=2.5 duration=0.2 region=6");
    add_fault(config, "as_degradation at=1 duration=2 asn=3 latency_x=4 rate_x=0.25 loss=0.02");

    const auto run_once = [&](const std::string& path) {
        Simulation s(config);
        s.run();
        EXPECT_EQ(s.faults().faults_applied(), 5);
        trace::Dataset dataset;
        dataset.log = s.trace();
        s.geodb().for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
            dataset.geodb.register_ip(ip, rec);
        });
        ASSERT_TRUE(trace::save_dataset(dataset, path));
    };
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path_a = (dir / "ns_chaos_determinism_a.nstrace").string();
    const std::string path_b = (dir / "ns_chaos_determinism_b.nstrace").string();
    run_once(path_a);
    run_once(path_b);
    const auto read_all = [](const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    };
    const std::string bytes_a = read_all(path_a);
    const std::string bytes_b = read_all(path_b);
    ASSERT_GT(bytes_a.size(), 1000u);
    EXPECT_TRUE(bytes_a == bytes_b) << "faulted runs differ between identical configs";
    std::filesystem::remove(path_a);
    std::filesystem::remove(path_b);
}

void add_campaign(SimulationConfig& config, const std::string& spec) {
    auto parsed = fault::parse_campaign(spec);
    ASSERT_TRUE(parsed.ok()) << spec << ": " << (parsed.ok() ? "" : parsed.error().message);
    config.campaigns.push_back(parsed.value());
}

TEST(Chaos, CampaignRunIsByteIdenticalForSameSeed) {
    // Campaign expansion happens inside the run against the deterministic
    // topology, so the determinism contract must hold end to end: same
    // scenario (explicit faults + campaign) ⇒ byte-identical traces.
    auto config = chaos_config(506);
    config.peers = 300;
    add_fault(config, "stun_blackout at=1 duration=0.5");
    add_campaign(config, "seed=7 waves=2 mean_concurrent=2 start=1.5 spacing=1 duration=0.1 "
                         "fraction=0.15");

    int faults_applied = -1;
    const auto run_once = [&](const std::string& path) {
        Simulation s(config);
        s.run();
        EXPECT_GT(s.faults().faults_applied(), 1) << "campaign waves must have landed";
        if (faults_applied < 0)
            faults_applied = s.faults().faults_applied();
        else
            EXPECT_EQ(s.faults().faults_applied(), faults_applied)
                << "expansion drew a different storm on the second run";
        trace::Dataset dataset;
        dataset.log = s.trace();
        s.geodb().for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
            dataset.geodb.register_ip(ip, rec);
        });
        ASSERT_TRUE(trace::save_dataset(dataset, path));
    };
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path_a = (dir / "ns_campaign_determinism_a.nstrace").string();
    const std::string path_b = (dir / "ns_campaign_determinism_b.nstrace").string();
    run_once(path_a);
    run_once(path_b);
    const auto read_all = [](const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    };
    const std::string bytes_a = read_all(path_a);
    ASSERT_GT(bytes_a.size(), 1000u);
    EXPECT_TRUE(bytes_a == read_all(path_b)) << "campaign runs differ between identical configs";
    std::filesystem::remove(path_a);
    std::filesystem::remove(path_b);
}

TEST(Chaos, CampaignDeliveryHoldsUnderConcurrentFaults) {
    // The §3.8 claim under compound failure: ~2 concurrent faults per wave
    // must not collapse delivery among the downloads users waited for.
    auto config = chaos_config(507);
    add_campaign(config, "seed=11 waves=2 mean_concurrent=2 start=1.5 spacing=1 duration=0.1 "
                         "fraction=0.15");
    Simulation s(config);
    s.run();
    EXPECT_GT(s.faults().faults_applied(), 1);

    const auto outcomes = analysis::outcome_stats(s.trace());
    EXPECT_GT(outcomes.all.n, 50);
    const double served =
        outcomes.all.completed + outcomes.all.failed_system + outcomes.all.failed_other;
    ASSERT_GT(served, 0.0);
    EXPECT_GE(outcomes.all.completed / served, 0.95)
        << "delivery under a 2-concurrent-fault campaign (ISSUE 7 acceptance)";
}

TEST(Chaos, RecoveryReportMeasuresTheFaultTimeline) {
    // The v8 trace carries onset/restore records; recovery_report must pair
    // them, place them at the plan's times, and produce a recovery verdict.
    auto config = chaos_config(508);
    add_fault(config, "edge_outage at=2 duration=0.125 region=all");
    add_fault(config, "mass_churn at=2.5 fraction=0.2");
    Simulation s(config);
    s.run();

    const auto report = analysis::recovery_report(s.trace());
    ASSERT_EQ(report.faults.size(), 2u);
    const auto& outage = report.faults[0];
    EXPECT_EQ(outage.kind, analysis::TracedFaultKind::edge_outage);
    ASSERT_TRUE(outage.evaluable);
    EXPECT_NEAR(outage.onset.seconds() / 86400.0, 2.0, 1e-6);
    EXPECT_NEAR(outage.restore.seconds() / 86400.0, 2.125, 1e-6);
    EXPECT_GE(outage.min_delivery_during, 0.0);
    EXPECT_LE(outage.min_delivery_during, 1.0);
    EXPECT_GE(outage.recover_hours, 0.0) << "a 3-hour outage must recover within the horizon";

    const auto& churn = report.faults[1];
    EXPECT_EQ(churn.kind, analysis::TracedFaultKind::mass_churn);
    ASSERT_TRUE(churn.evaluable);
    EXPECT_EQ(churn.restore, churn.onset) << "one-shot faults recover from their onset";
    EXPECT_TRUE(report.all_recovered);
    EXPECT_GE(report.worst_recover_hours, 0.0);
}

TEST(Chaos, CampaignScenarioRoundTripsAndSmokes) {
    // The shipped campaign scenario parses, the campaign spec round-trips
    // through describe_scenario, and a reduced-scale run completes with the
    // fault timeline visible to the recovery analysis.
    const auto loaded = load_scenario(NS_SOURCE_DIR "/scenarios/chaos_campaign.ini");
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    auto config = loaded.value();
    ASSERT_EQ(config.campaigns.size(), 1u);
    ASSERT_EQ(config.faults.events.size(), 1u);
    EXPECT_EQ(config.campaigns[0].seed, 7u);

    const std::string described = describe_scenario(config);
    const auto reparsed = parse_scenario(described);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
    ASSERT_EQ(reparsed.value().campaigns.size(), 1u);
    EXPECT_EQ(fault::to_string(reparsed.value().campaigns[0]),
              fault::to_string(config.campaigns[0]));

    config.peers = 500;  // smoke scale
    config.as_graph.total_ases = 200;
    Simulation s(config);
    s.run();
    EXPECT_GT(s.faults().faults_applied(), 1);
    EXPECT_FALSE(analysis::recovery_report(s.trace()).faults.empty());
}

TEST(Chaos, RegionalOutageScenarioSmokes) {
    // The shipped chaos scenario parses, carries its fault plan, and runs
    // (at reduced population) without wedging or collapsing.
    const auto loaded = load_scenario(NS_SOURCE_DIR "/scenarios/chaos_regional_outage.ini");
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    auto config = loaded.value();
    ASSERT_EQ(config.faults.events.size(), 4u);
    EXPECT_EQ(config.faults.events[0].kind, fault::FaultKind::region_partition);
    EXPECT_EQ(config.faults.events[1].kind, fault::FaultKind::edge_outage);

    config.peers = 500;  // smoke scale; the .ini's own scale is for benches
    config.as_graph.total_ases = 200;
    Simulation s(config);
    s.run();

    EXPECT_EQ(s.faults().faults_applied(), 4);
    const auto outcomes = analysis::outcome_stats(s.trace());
    EXPECT_GT(outcomes.all.n, 50);
    EXPECT_GT(outcomes.all.completed, 0.6);
    EXPECT_GT(analysis::degradation_stats(s.trace()).total, 0);
}

}  // namespace
}  // namespace netsession
