// End-to-end integration: a small full deployment, with cross-cutting
// invariants over the resulting trace.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <unordered_set>

#include "analysis/measurement.hpp"
#include "core/simulation.hpp"
#include "trace/serialize.hpp"

namespace netsession {
namespace {

SimulationConfig small_config(std::uint64_t seed = 11) {
    SimulationConfig config;
    config.seed = seed;
    config.peers = 800;
    config.behavior.warmup = sim::days(2.0);
    config.behavior.window = sim::days(4.0);
    config.behavior.downloads_per_peer_per_month = 25.0;  // dense demand at tiny scale
    config.as_graph.total_ases = 200;
    return config;
}

struct SharedRun : ::testing::Test {
    static Simulation& sim() {
        static Simulation* instance = [] {
            auto* s = new Simulation(small_config());
            s->run();
            return s;
        }();
        return *instance;
    }
};

TEST_F(SharedRun, ProducesActivityOfEveryKind) {
    const auto& log = sim().trace();
    EXPECT_GT(log.downloads().size(), 100u);
    EXPECT_GT(log.logins().size(), 1000u);
    EXPECT_GT(log.registrations().size(), 0u);
    EXPECT_GT(log.transfers().size(), 0u) << "peers must exchange content";
}

TEST_F(SharedRun, DownloadRecordsAreInternallyConsistent) {
    for (const auto& d : sim().trace().downloads()) {
        EXPECT_GE(d.bytes_from_infrastructure, 0);
        EXPECT_GE(d.bytes_from_peers, 0);
        EXPECT_GE(d.end.us, d.start.us);
        EXPECT_GE(d.peers_initially_returned, 0);
        EXPECT_LE(d.peers_initially_returned, 40) << "up to 40 peers are returned (§3.7)";
        if (d.outcome == trace::DownloadOutcome::completed) {
            // A completed download moved at least the object; corruption
            // re-fetches allow a modest overshoot.
            EXPECT_GE(d.total_bytes(), d.object_size);
            EXPECT_LE(d.total_bytes(), d.object_size + d.object_size / 4 + 10_MB);
        } else {
            EXPECT_LE(d.total_bytes(), d.object_size + d.object_size / 4 + 10_MB);
        }
        if (!d.p2p_enabled) { EXPECT_EQ(d.bytes_from_peers, 0); }
        const double eff = d.peer_efficiency();
        EXPECT_GE(eff, 0.0);
        EXPECT_LE(eff, 1.0);
    }
}

TEST_F(SharedRun, EdgeLedgerCoversReportedInfraBytes) {
    // Every accepted report's infrastructure bytes are backed by the trusted
    // edge ledger (which is exactly what the accounting filter enforces).
    EXPECT_GT(sim().accounting().accepted(), 0);
    EXPECT_EQ(sim().accounting().rejected(), 0) << "honest population, no rejections";
}

TEST_F(SharedRun, TransfersReferenceRealPeersAndResolve) {
    const auto& geodb = sim().geodb();
    for (const auto& t : sim().trace().transfers()) {
        EXPECT_GT(t.bytes, 0);
        EXPECT_NE(t.from_guid, t.to_guid);
        EXPECT_TRUE(geodb.lookup(t.from_ip).has_value());
        EXPECT_TRUE(geodb.lookup(t.to_ip).has_value());
    }
}

TEST_F(SharedRun, LoginsResolveThroughGeoDatabase) {
    const auto& geodb = sim().geodb();
    std::size_t checked = 0;
    for (const auto& l : sim().trace().logins()) {
        ASSERT_TRUE(geodb.lookup(l.ip).has_value());
        if (++checked > 2000) break;
    }
}

TEST_F(SharedRun, PeerBytesMatchBetweenDownloadsAndTransfers) {
    // The per-source transfer detail must re-aggregate to the download
    // totals (the §6.1 analysis depends on this).
    Bytes from_downloads = 0;
    for (const auto& d : sim().trace().downloads()) from_downloads += d.bytes_from_peers;
    Bytes from_transfers = 0;
    for (const auto& t : sim().trace().transfers()) from_transfers += t.bytes;
    // Transfers of downloads cut off by the window end may be missing.
    EXPECT_NEAR(static_cast<double>(from_transfers), static_cast<double>(from_downloads),
                0.1 * static_cast<double>(from_downloads) + 1e8);
}

TEST_F(SharedRun, MeasurementPipelineRunsOnRealTrace) {
    const auto& log = sim().trace();
    const analysis::LoginIndex logins(log);
    const auto overall = analysis::overall_stats(log, sim().geodb());
    EXPECT_EQ(overall.downloads_initiated, log.downloads().size());
    EXPECT_LE(overall.distinct_countries, net::countries().size());
    EXPECT_GT(overall.distinct_ases, 10u);

    const auto headline = analysis::headline_offload(log);
    EXPECT_GT(headline.p2p_enabled_byte_fraction, 0.2);
    EXPECT_LT(headline.p2p_enabled_file_fraction, 0.2);

    const auto outcomes = analysis::outcome_stats(log);
    EXPECT_GT(outcomes.all.completed, 0.7);

    const auto mobility = analysis::mobility_stats(log, logins, sim().geodb());
    EXPECT_GT(mobility.frac_single_as, 0.5);
    EXPECT_NEAR(mobility.frac_single_as + mobility.frac_two_as + mobility.frac_more_as, 1.0,
                1e-9);

    const auto balance = analysis::traffic_balance(log, sim().geodb(), &sim().as_graph());
    EXPECT_EQ(balance.intra_as_bytes + balance.inter_as_bytes, balance.total_p2p_bytes);
}

TEST(Simulation, DeterministicForSameSeed) {
    Simulation a(small_config(77));
    a.run();
    Simulation b(small_config(77));
    b.run();
    EXPECT_EQ(a.trace().downloads().size(), b.trace().downloads().size());
    EXPECT_EQ(a.trace().logins().size(), b.trace().logins().size());
    EXPECT_EQ(a.trace().transfers().size(), b.trace().transfers().size());
    Bytes bytes_a = 0, bytes_b = 0;
    for (const auto& d : a.trace().downloads()) bytes_a += d.total_bytes();
    for (const auto& d : b.trace().downloads()) bytes_b += d.total_bytes();
    EXPECT_EQ(bytes_a, bytes_b);
}

TEST(Simulation, SerializedTraceIsByteIdenticalForSameSeed) {
    // The determinism contract is byte-level (docs/SIMULATOR.md §3): the same
    // seed must serialize to the same file, bit for bit. Count- and
    // total-level checks (above) miss order-sensitive data structures and
    // indeterminate padding in the raw record dump; this guard does not.
    auto config = small_config(88);
    config.peers = 300;
    config.behavior.window = sim::days(3.0);
    const auto run_once = [&](const std::string& path) {
        Simulation s(config);
        s.run();
        trace::Dataset dataset;
        dataset.log = s.trace();
        s.geodb().for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
            dataset.geodb.register_ip(ip, rec);
        });
        ASSERT_TRUE(trace::save_dataset(dataset, path));
        EXPECT_GT(s.perf_stats().sim.dispatched, 0u);
        EXPECT_GT(s.perf_stats().flows.flows_completed, 0u);
    };
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path_a = (dir / "ns_determinism_a.nstrace").string();
    const std::string path_b = (dir / "ns_determinism_b.nstrace").string();
    run_once(path_a);
    run_once(path_b);
    const auto read_all = [](const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    };
    const std::string bytes_a = read_all(path_a);
    const std::string bytes_b = read_all(path_b);
    ASSERT_GT(bytes_a.size(), 1000u);
    EXPECT_TRUE(bytes_a == bytes_b) << "serialized traces differ between identical runs";
    std::filesystem::remove(path_a);
    std::filesystem::remove(path_b);
}

TEST(Simulation, DifferentSeedsDiffer) {
    Simulation a(small_config(101));
    a.run();
    Simulation b(small_config(102));
    b.run();
    Bytes bytes_a = 0, bytes_b = 0;
    for (const auto& d : a.trace().downloads()) bytes_a += d.total_bytes();
    for (const auto& d : b.trace().downloads()) bytes_b += d.total_bytes();
    EXPECT_NE(bytes_a, bytes_b);
}

TEST(Simulation, DisableP2pMakesEveryDownloadInfraOnly) {
    auto config = small_config(55);
    config.peers = 300;
    config.disable_p2p = true;
    Simulation s(config);
    s.run();
    EXPECT_GT(s.trace().downloads().size(), 20u);
    for (const auto& d : s.trace().downloads()) {
        EXPECT_FALSE(d.p2p_enabled);
        EXPECT_EQ(d.bytes_from_peers, 0);
    }
    EXPECT_TRUE(s.trace().transfers().empty());
}

TEST(Simulation, AttackersAreFilteredAtScale) {
    auto config = small_config(66);
    config.peers = 400;
    config.behavior.attacker_fraction = 0.2;
    Simulation s(config);
    s.run();
    EXPECT_GT(s.accounting().rejected(), 0)
        << "inflated reports must be caught by the edge cross-check";
    // Honest traffic still gets billed.
    EXPECT_GT(s.accounting().accepted(), s.accounting().rejected());
}

}  // namespace
}  // namespace netsession
