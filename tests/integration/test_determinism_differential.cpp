// Differential determinism suite for the region-sharded simulation core
// (docs/PARALLELISM.md "The sharded simulation core").
//
// Every shipped scenario preset runs — at a truncated horizon — under shard
// counts 1, 2, 4 and 8, twice each. The oracle is the analysis pipeline's
// FNV-1a fingerprint plus the raw trace shape:
//
//   - per configuration (scenario x shard count), repeats must be
//     byte-identical: equal fingerprints, equal entry counts;
//   - across shard counts, traces legitimately differ (lane-major windowing
//     permutes event interleaving and RNG draw order — the documented
//     contract), but the *measurements* must agree: same download demand,
//     same session process, and headline ratios within tight tolerances.
//
// shards == 1 is simultaneously the reference engine and the proof that the
// legacy path is untouched: its fingerprints are the same ones the golden
// and chaos determinism tests pin elsewhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "core/scenario_io.hpp"
#include "core/simulation.hpp"
#include "trace/serialize.hpp"

namespace netsession {
namespace {

std::vector<std::string> list_scenarios() {
    std::vector<std::string> names;
    for (const auto& entry :
         std::filesystem::directory_iterator(std::string(NS_SOURCE_DIR) + "/scenarios"))
        if (entry.path().extension() == ".ini") names.push_back(entry.path().stem().string());
    std::sort(names.begin(), names.end());
    return names;
}

/// One run's comparable surface.
struct RunResult {
    std::uint64_t fingerprint = 0;
    std::size_t downloads = 0;
    std::size_t logins = 0;
    std::size_t transfers = 0;
    double offload = 0.0;
    double efficiency = 0.0;
    double completion = 0.0;
    double sessions_started = 0.0;
};

RunResult run_truncated(SimulationConfig config, int shards) {
    // Truncated horizon: the suite's power comes from breadth (every
    // scenario x every shard count x repeats), not from long windows.
    config.shards = shards;
    config.peers = std::min(config.peers, 300);
    config.as_graph.total_ases = std::min(config.as_graph.total_ases, 300);
    config.behavior.warmup = std::min(config.behavior.warmup, sim::days(0.3));
    config.behavior.window = std::min(config.behavior.window, sim::days(0.8));
    config.behavior.downloads_per_peer_per_month =
        std::max(config.behavior.downloads_per_peer_per_month, 30.0);

    Simulation sim(config);
    sim.run();

    trace::Dataset dataset;
    dataset.log = sim.trace();
    sim.geodb().for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
        dataset.geodb.register_ip(ip, rec);
    });
    const analysis::PipelineResult pipeline =
        analysis::run_full_pipeline(dataset, &sim.as_graph());

    RunResult r;
    r.fingerprint = analysis::fingerprint(pipeline);
    r.downloads = sim.trace().downloads().size();
    r.logins = sim.trace().logins().size();
    r.transfers = sim.trace().transfers().size();
    r.offload = pipeline.headline.overall_offload;
    r.efficiency = pipeline.headline.mean_peer_efficiency;
    r.completion = pipeline.outcomes.all.completed;
    r.sessions_started = static_cast<double>(sim.driver().sessions_started());
    return r;
}

class ShardDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardDifferential, ByteIdenticalPerConfigAndEquivalentAcrossCounts) {
    const std::string path =
        std::string(NS_SOURCE_DIR) + "/scenarios/" + GetParam() + ".ini";
    const auto loaded = load_scenario(path);
    ASSERT_TRUE(loaded.ok()) << (loaded.ok() ? "" : loaded.error().message);

    std::vector<RunResult> per_count;
    for (const int shards : {1, 2, 4, 8}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        const RunResult a = run_truncated(loaded.value(), shards);
        const RunResult b = run_truncated(loaded.value(), shards);
        // Repeats of a fixed configuration are byte-identical — THE
        // determinism contract, shard count included.
        EXPECT_EQ(a.fingerprint, b.fingerprint);
        EXPECT_EQ(a.downloads, b.downloads);
        EXPECT_EQ(a.logins, b.logins);
        EXPECT_EQ(a.transfers, b.transfers);
        EXPECT_GT(a.logins, 0u) << "truncated run must still produce activity";
        per_count.push_back(a);
    }

    // Across shard counts: the session/demand processes are driven by
    // per-user streams, so they must agree exactly; transfer dynamics and
    // headline ratios agree within tolerance (lane-major windowing reorders
    // shared-stream draws — see docs/PARALLELISM.md for why exact equality
    // across counts is not a design goal).
    const RunResult& ref = per_count.front();
    for (std::size_t i = 1; i < per_count.size(); ++i) {
        SCOPED_TRACE("shards index " + std::to_string(i) + " vs shards=1");
        const RunResult& r = per_count[i];
        EXPECT_EQ(r.sessions_started, ref.sessions_started)
            << "session process is per-user RNG, independent of sharding";
        const auto close_rel = [](std::size_t a, std::size_t b, double rel) {
            const double hi = static_cast<double>(std::max(a, b));
            const double lo = static_cast<double>(std::min(a, b));
            return hi == 0.0 || (hi - lo) / hi <= rel;
        };
        EXPECT_TRUE(close_rel(r.downloads, ref.downloads, 0.02))
            << r.downloads << " vs " << ref.downloads;
        EXPECT_TRUE(close_rel(r.logins, ref.logins, 0.02)) << r.logins << " vs " << ref.logins;
        EXPECT_TRUE(close_rel(r.transfers, ref.transfers, 0.10))
            << r.transfers << " vs " << ref.transfers;
        EXPECT_NEAR(r.offload, ref.offload, 0.10);
        EXPECT_NEAR(r.efficiency, ref.efficiency, 0.10);
        EXPECT_NEAR(r.completion, ref.completion, 0.06);
    }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ShardDifferential, ::testing::ValuesIn(list_scenarios()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                             std::string name = info.param;
                             for (char& c : name)
                                 if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                             return name;
                         });

}  // namespace
}  // namespace netsession
