// Content objects: piece table construction and hash verification.
#include <gtest/gtest.h>

#include "swarm/content.hpp"
#include "swarm/piece_map.hpp"

namespace netsession::swarm {
namespace {

ContentObject make(Bytes size, std::uint32_t max_pieces = 128,
                   Bytes min_piece = 256 * 1024) {
    return ContentObject(ObjectId{7, 9}, CpCode{1000}, 42, size, max_pieces, min_piece);
}

TEST(ContentObject, PieceCountBounded) {
    const auto obj = make(10_GB, 128);
    EXPECT_LE(obj.piece_count(), 128u);
    EXPECT_GE(obj.piece_count(), 100u);
}

TEST(ContentObject, SmallObjectRespectsMinPieceSize) {
    const auto obj = make(1_MB, 128, 256 * 1024);
    EXPECT_GE(obj.piece_size(), 256 * 1024);
    EXPECT_LE(obj.piece_count(), 4u);
}

TEST(ContentObject, PieceLengthsSumToObjectSize) {
    for (const Bytes size : {1_MB + 17, 100_MB, 1_GB + 1, 4_GB + 123456}) {
        const auto obj = make(size);
        Bytes total = 0;
        for (PieceIndex i = 0; i < obj.piece_count(); ++i) {
            EXPECT_GT(obj.piece_length(i), 0);
            EXPECT_LE(obj.piece_length(i), obj.piece_size());
            total += obj.piece_length(i);
        }
        EXPECT_EQ(total, size) << "size " << size;
    }
}

TEST(ContentObject, CorrectTransferVerifies) {
    const auto obj = make(500_MB);
    for (PieceIndex i = 0; i < obj.piece_count(); ++i)
        EXPECT_TRUE(obj.verify(i, obj.correct_transfer_digest(i)));
}

TEST(ContentObject, CorruptTransferFailsVerification) {
    const auto obj = make(500_MB);
    Digest256 d = obj.correct_transfer_digest(3);
    d.bytes[0] ^= 0x01;
    EXPECT_FALSE(obj.verify(3, d));
}

TEST(ContentObject, PieceHashesAreDistinctPerPieceAndObject) {
    const auto a = make(100_MB);
    const ContentObject b(ObjectId{7, 10}, CpCode{1000}, 43, 100_MB);
    EXPECT_NE(a.piece_hash(0), a.piece_hash(1));
    EXPECT_NE(a.piece_hash(0), b.piece_hash(0)) << "different versions must not mix (§3.5)";
}

TEST(ContentObject, OutOfRangeVerifyIsFalse) {
    const auto obj = make(10_MB);
    EXPECT_FALSE(obj.verify(obj.piece_count(), obj.correct_transfer_digest(0)));
}

TEST(PieceMap, SetAndCompletion) {
    PieceMap m(4);
    EXPECT_FALSE(m.complete());
    EXPECT_DOUBLE_EQ(m.completion(), 0.0);
    EXPECT_TRUE(m.set(0));
    EXPECT_FALSE(m.set(0)) << "setting twice reports no change";
    EXPECT_EQ(m.have_count(), 1u);
    m.set(1);
    m.set(2);
    m.set(3);
    EXPECT_TRUE(m.complete());
    EXPECT_DOUBLE_EQ(m.completion(), 1.0);
}

TEST(PieceMap, FullFactory) {
    const auto m = PieceMap::full(17);
    EXPECT_TRUE(m.complete());
    EXPECT_EQ(m.have_count(), 17u);
    for (PieceIndex i = 0; i < 17; ++i) EXPECT_TRUE(m.has(i));
}

TEST(PieceMap, EmptyMapIsNotComplete) {
    PieceMap m;
    EXPECT_FALSE(m.complete());
}

}  // namespace
}  // namespace netsession::swarm
