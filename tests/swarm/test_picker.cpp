// Piece picker: rarest-first semantics, in-flight exclusion, availability
// bookkeeping — including a randomized property sweep.
#include <gtest/gtest.h>

#include <set>

#include "swarm/picker.hpp"

namespace netsession::swarm {
namespace {

TEST(PiecePicker, PicksOnlyMissingPiecesRemoteHas) {
    PiecePicker p(4);
    PieceMap local(4);
    local.set(0);
    PieceMap remote(4);
    remote.set(0);
    remote.set(2);
    Rng rng(1);
    const auto pick = p.pick_from_peer(local, remote, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 2u);
}

TEST(PiecePicker, ReturnsNulloptWhenNothingAvailable) {
    PiecePicker p(3);
    PieceMap local = PieceMap::full(3);
    PieceMap remote = PieceMap::full(3);
    Rng rng(2);
    EXPECT_FALSE(p.pick_from_peer(local, remote, rng).has_value());
    EXPECT_FALSE(p.pick_from_edge(local, rng).has_value());
}

TEST(PiecePicker, RarestFirstPrefersLowAvailability) {
    PiecePicker p(3);
    PieceMap common(3);
    common.set(0);
    common.set(1);
    p.add_source(common);
    p.add_source(common);
    PieceMap rare_holder(3);
    rare_holder.set(1);
    rare_holder.set(2);
    p.add_source(rare_holder);
    // availability: piece0=2, piece1=3, piece2=1.
    PieceMap local(3);
    PieceMap remote = PieceMap::full(3);
    Rng rng(3);
    EXPECT_EQ(*p.pick_from_peer(local, remote, rng), 2u);
}

TEST(PiecePicker, InFlightExcluded) {
    PiecePicker p(2);
    PieceMap local(2);
    PieceMap remote = PieceMap::full(2);
    Rng rng(4);
    p.set_in_flight(0, true);
    EXPECT_EQ(*p.pick_from_peer(local, remote, rng), 1u);
    p.set_in_flight(1, true);
    EXPECT_FALSE(p.pick_from_peer(local, remote, rng).has_value());
    p.set_in_flight(0, false);
    EXPECT_EQ(*p.pick_from_peer(local, remote, rng), 0u);
}

TEST(PiecePicker, AddRemoveSourceBalances) {
    PiecePicker p(3);
    PieceMap m(3);
    m.set(1);
    p.add_source(m);
    EXPECT_EQ(p.availability(1), 1u);
    p.remove_source(m);
    EXPECT_EQ(p.availability(1), 0u);
}

TEST(PiecePicker, SourceGainedIncrementsAvailability) {
    PiecePicker p(3);
    p.source_gained(2);
    p.source_gained(2);
    EXPECT_EQ(p.availability(2), 2u);
}

TEST(PiecePicker, TieBreakIsRandomised) {
    PiecePicker p(8);
    PieceMap local(8);
    PieceMap remote = PieceMap::full(8);
    Rng rng(5);
    std::set<PieceIndex> picked;
    for (int i = 0; i < 200; ++i) picked.insert(*p.pick_from_peer(local, remote, rng));
    EXPECT_GT(picked.size(), 4u) << "ties should spread across equally-rare pieces";
}

class PickerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PickerPropertyTest, PickIsAlwaysValidAndRarest) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const PieceIndex n = 32;
    PiecePicker p(n);
    PieceMap local(n);
    PieceMap remote(n);
    // Random availability landscape, local and remote maps.
    for (PieceIndex i = 0; i < n; ++i) {
        for (std::uint64_t k = rng.below(5); k > 0; --k) p.source_gained(i);
        if (rng.chance(0.3)) local.set(i);
        if (rng.chance(0.7)) remote.set(i);
        if (rng.chance(0.1)) p.set_in_flight(i, true);
    }
    for (int trial = 0; trial < 20; ++trial) {
        const auto pick = p.pick_from_peer(local, remote, rng);
        if (!pick) break;
        ASSERT_LT(*pick, n);
        EXPECT_FALSE(local.has(*pick));
        EXPECT_TRUE(remote.has(*pick));
        EXPECT_FALSE(p.in_flight(*pick));
        // No eligible piece may be strictly rarer than the pick.
        for (PieceIndex i = 0; i < n; ++i) {
            if (local.has(i) || !remote.has(i) || p.in_flight(i)) continue;
            EXPECT_GE(p.availability(i), p.availability(*pick));
        }
        p.set_in_flight(*pick, true);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PickerPropertyTest, ::testing::Range(1, 17));

}  // namespace
}  // namespace netsession::swarm
