// Edge infrastructure: catalog, auth tokens, piece serving with trusted byte
// accounting, DNS-style nearest mapping.
#include <gtest/gtest.h>

#include "edge/edge_network.hpp"
#include "net/world.hpp"

namespace netsession::edge {
namespace {

struct Fixture {
    sim::Simulator sim;
    net::World world;
    Catalog catalog;
    ObjectId oid{5, 5};

    Fixture() : world(sim, make_graph()) {
        swarm::ContentObject object(oid, CpCode{1000}, 99, 100_MB, 16);
        ObjectPolicy policy;
        policy.p2p_enabled = true;
        catalog.publish(std::move(object), policy);
    }

    static net::AsGraph make_graph() {
        net::AsGraphConfig config;
        config.total_ases = 200;
        return net::AsGraph::generate(config, Rng(1));
    }

    HostId client_in(std::string_view alpha2, Rng& rng) {
        const net::CountryInfo* c = net::find_country(alpha2);
        net::HostInfo info;
        info.attach.location = net::Location{c->id, 0, c->center};
        info.attach.asn = world.as_graph().pick_for_country(c->id, rng);
        info.up = mbps(2.0);
        info.down = mbps(20.0);
        return world.create_host(info);
    }
};

TEST(Catalog, PublishAndFind) {
    Fixture f;
    EXPECT_EQ(f.catalog.size(), 1u);
    const CatalogEntry* entry = f.catalog.find(f.oid);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->object.size(), 100_MB);
    EXPECT_TRUE(entry->policy.p2p_enabled);
    EXPECT_EQ(f.catalog.find(ObjectId{1, 1}), nullptr);
}

TEST(TokenAuthority, IssueAndValidate) {
    TokenAuthority authority("secret");
    const Guid guid{1, 2};
    const ObjectId object{3, 4};
    const auto token = authority.issue(guid, object, sim::SimTime{1'000'000});
    EXPECT_TRUE(authority.validate(token, sim::SimTime{500'000}));
    EXPECT_FALSE(authority.validate(token, sim::SimTime{1'000'001})) << "expired";
}

TEST(TokenAuthority, TamperedTokenRejected) {
    TokenAuthority authority("secret");
    auto token = authority.issue(Guid{1, 2}, ObjectId{3, 4}, sim::SimTime{1'000'000});
    token.guid = Guid{9, 9};  // claim a different identity
    EXPECT_FALSE(authority.validate(token, sim::SimTime{0}));
    auto token2 = authority.issue(Guid{1, 2}, ObjectId{3, 4}, sim::SimTime{1'000'000});
    token2.expiry = sim::SimTime{99'000'000};  // extend the lifetime
    EXPECT_FALSE(authority.validate(token2, sim::SimTime{2'000'000}));
}

TEST(TokenAuthority, ForgedMacRejectedWhateverItsShape) {
    // An attacker who never held a genuine token submits a guessed MAC.
    // validate() compares via constant_time_equal, so rejection must hold
    // for an all-zero MAC, a near-miss (one bit off the genuine MAC), and a
    // MAC for the right tuple under the wrong key.
    TokenAuthority authority("secret");
    const auto genuine = authority.issue(Guid{1, 2}, ObjectId{3, 4}, sim::SimTime{1'000'000});

    auto zeroed = genuine;
    zeroed.mac = Digest256{};
    EXPECT_FALSE(authority.validate(zeroed, sim::SimTime{0}));

    auto near_miss = genuine;
    near_miss.mac.bytes[31] ^= 0x01;  // last byte: a prefix-compare would pass
    EXPECT_FALSE(authority.validate(near_miss, sim::SimTime{0}));
    near_miss = genuine;
    near_miss.mac.bytes[0] ^= 0x80;
    EXPECT_FALSE(authority.validate(near_miss, sim::SimTime{0}));

    auto wrong_key = TokenAuthority("not-the-secret")
                         .issue(genuine.guid, genuine.object, genuine.expiry);
    EXPECT_FALSE(authority.validate(wrong_key, sim::SimTime{0}));
    EXPECT_TRUE(authority.validate(genuine, sim::SimTime{0}));
}

TEST(TokenAuthority, ExpiredTokenRejectedEvenWithGenuineMac) {
    TokenAuthority authority("secret");
    const auto token = authority.issue(Guid{5, 6}, ObjectId{7, 8}, sim::SimTime{1'000'000});
    EXPECT_TRUE(authority.validate(token, sim::SimTime{999'999}));
    EXPECT_FALSE(authority.validate(token, sim::SimTime{1'000'001}))
        << "a genuine but stale token must not authorize peer search";
}

TEST(TokenAuthority, DifferentSecretsDontValidate) {
    TokenAuthority a("secret-a");
    TokenAuthority b("secret-b");
    const auto token = a.issue(Guid{1, 2}, ObjectId{3, 4}, sim::SimTime{1'000'000});
    EXPECT_FALSE(b.validate(token, sim::SimTime{0}));
}

TEST(EdgeNetwork, OneServerPerModelledRegion) {
    Fixture f;
    EdgeNetworkConfig config;
    EdgeNetwork edges(f.world, f.catalog, config);
    EXPECT_EQ(edges.servers().size(), net::regions().size());
}

TEST(EdgeNetwork, NearestIsGeographicallyClosest) {
    Fixture f;
    EdgeNetworkConfig config;
    EdgeNetwork edges(f.world, f.catalog, config);
    Rng rng(2);
    const HostId client = f.client_in("DE", rng);
    EdgeServer& nearest = edges.nearest(client);
    const auto client_pt = f.world.host(client).attach.location.point;
    const double chosen =
        net::haversine_km(client_pt, f.world.host(nearest.host()).attach.location.point);
    for (const auto& s : edges.servers()) {
        const double km =
            net::haversine_km(client_pt, f.world.host(s->host()).attach.location.point);
        EXPECT_GE(km + 1e-9, chosen);
    }
}

TEST(EdgeServer, ServesPieceAndCountsBytes) {
    Fixture f;
    EdgeNetworkConfig config;
    EdgeNetwork edges(f.world, f.catalog, config);
    Rng rng(3);
    const HostId client = f.client_in("FR", rng);
    EdgeServer& server = edges.nearest(client);
    const auto& object = f.catalog.find(f.oid)->object;
    const Guid guid{7, 7};

    Digest256 got{};
    server.serve_piece(client, guid, object, 0, [&](Digest256 d) { got = d; });
    f.sim.run();
    EXPECT_TRUE(object.verify(0, got)) << "edge data is authentic";
    EXPECT_EQ(server.bytes_served(guid, f.oid), object.piece_length(0));
    EXPECT_EQ(server.total_bytes_served(), object.piece_length(0));
    EXPECT_EQ(server.bytes_served(Guid{8, 8}, f.oid), 0);
}

TEST(EdgeServer, AbortedDeliveryDoesNotCount) {
    Fixture f;
    EdgeNetworkConfig config;
    config.per_connection_cap = 1000.0;  // slow, so we can abort mid-flight
    EdgeNetwork edges(f.world, f.catalog, config);
    Rng rng(4);
    const HostId client = f.client_in("BR", rng);
    EdgeServer& server = edges.nearest(client);
    const auto& object = f.catalog.find(f.oid)->object;

    bool delivered = false;
    const auto flow = server.serve_piece(client, Guid{7, 7}, object, 1,
                                         [&](Digest256) { delivered = true; });
    f.sim.run_until(sim::SimTime{} + sim::seconds(1.0));
    const Bytes partial = server.abort(flow);
    f.sim.run();
    EXPECT_FALSE(delivered);
    EXPECT_GT(partial, 0);
    EXPECT_EQ(server.bytes_served(Guid{7, 7}, f.oid), 0)
        << "the trusted ledger counts completed pieces only";
}

TEST(EdgeServer, TokenRoundTripThroughAuthority) {
    Fixture f;
    EdgeNetworkConfig config;
    EdgeNetwork edges(f.world, f.catalog, config);
    Rng rng(5);
    const HostId client = f.client_in("JP", rng);
    EdgeServer& server = edges.nearest(client);
    const auto token = server.authorize(Guid{1, 1}, f.oid);
    EXPECT_TRUE(edges.authority().validate(token, f.sim.now()));
    EXPECT_TRUE(edges.authority().validate(token, f.sim.now() + sim::minutes(59.0)));
    EXPECT_FALSE(edges.authority().validate(token, f.sim.now() + sim::minutes(61.0)));
}

}  // namespace
}  // namespace netsession::edge
