// Trace store and anonymisation.
#include <gtest/gtest.h>

#include <cstdio>

#include "trace/anonymize.hpp"
#include "trace/trace_log.hpp"

namespace netsession::trace {
namespace {

DownloadRecord sample_download() {
    DownloadRecord d;
    d.guid = Guid{10, 20};
    d.object = ObjectId{1, 2};
    d.url_hash = 777;
    d.cp_code = CpCode{1000};
    d.object_size = 42_MB;
    d.start = sim::SimTime{1'000'000};
    d.end = sim::SimTime{11'000'000};
    d.bytes_from_infrastructure = 12_MB;
    d.bytes_from_peers = 30_MB;
    d.p2p_enabled = true;
    d.outcome = DownloadOutcome::completed;
    return d;
}

TEST(TraceLog, CountsAllRecordKinds) {
    TraceLog log;
    log.add(sample_download());
    log.add(LoginRecord{});
    log.add(LoginRecord{});
    log.add(TransferRecord{});
    log.add(DnRegistrationRecord{});
    EXPECT_EQ(log.total_entries(), 5u);
    EXPECT_EQ(log.downloads().size(), 1u);
    EXPECT_EQ(log.logins().size(), 2u);
    log.clear();
    EXPECT_EQ(log.total_entries(), 0u);
}

TEST(DownloadRecord, DerivedMetrics) {
    const auto d = sample_download();
    EXPECT_EQ(d.total_bytes(), 42_MB);
    EXPECT_NEAR(d.peer_efficiency(), 30.0 / 42.0, 1e-9);
    EXPECT_NEAR(d.mean_speed(), 4.2e6, 1e3);  // 42 MB over 10 s
}

TEST(DownloadRecord, ZeroDurationHasZeroSpeed) {
    DownloadRecord d;
    d.start = d.end = sim::SimTime{5};
    EXPECT_DOUBLE_EQ(d.mean_speed(), 0.0);
    EXPECT_DOUBLE_EQ(d.peer_efficiency(), 0.0);
}

TEST(TraceLog, WritesTsv) {
    TraceLog log;
    log.add(sample_download());
    const std::string path = ::testing::TempDir() + "/downloads.tsv";
    EXPECT_EQ(log.write_downloads_tsv(path), 1u);
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char header[256];
    ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
    EXPECT_NE(std::string(header).find("bytes_peers"), std::string::npos);
    char row[512];
    ASSERT_NE(std::fgets(row, sizeof(row), f), nullptr);
    EXPECT_NE(std::string(row).find("completed"), std::string::npos);
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Anonymizer, PreservesEqualityAndHidesIdentity) {
    Anonymizer anon("key");
    const Guid g{10, 20};
    EXPECT_EQ(anon.scramble(g), anon.scramble(g));
    EXPECT_NE(anon.scramble(g), g);
    EXPECT_NE(anon.scramble(g), anon.scramble(Guid{10, 21}));
    // Different keys give unlinkable outputs.
    Anonymizer other("other-key");
    EXPECT_NE(anon.scramble(g), other.scramble(g));
    // Nil stays nil (absent entries stay absent).
    EXPECT_TRUE(anon.scramble(Guid{}).is_nil());
}

TEST(Anonymizer, RewritesWholeLogConsistently) {
    TraceLog log;
    auto d = sample_download();
    log.add(d);
    LoginRecord login;
    login.guid = d.guid;
    login.ip = net::IpAddr{0x01020304};
    login.secondary_guids[0] = SecondaryGuid{5, 6};
    log.add(login);
    TransferRecord t;
    t.from_guid = Guid{30, 30};
    t.to_guid = d.guid;
    t.from_ip = net::IpAddr{0x05060708};
    t.to_ip = login.ip;
    log.add(t);
    DnRegistrationRecord reg;
    reg.guid = d.guid;
    log.add(reg);

    Anonymizer anon("key");
    const Guid expected_guid = anon.scramble(d.guid);
    anon.anonymize(log);

    // The same original GUID maps to the same token across record kinds, so
    // joins still work after anonymisation (§4.1).
    EXPECT_EQ(log.downloads()[0].guid, expected_guid);
    EXPECT_EQ(log.logins()[0].guid, expected_guid);
    EXPECT_EQ(log.transfers()[0].to_guid, expected_guid);
    EXPECT_EQ(log.registrations()[0].guid, expected_guid);
    EXPECT_NE(log.logins()[0].ip, login.ip);
    EXPECT_EQ(log.logins()[0].ip, log.transfers()[0].to_ip);
    EXPECT_NE(log.downloads()[0].url_hash, 777u);
    EXPECT_FALSE(log.logins()[0].secondary_guids[0].is_nil());
    EXPECT_NE(log.logins()[0].secondary_guids[0], (SecondaryGuid{5, 6}));
    EXPECT_TRUE(log.logins()[0].secondary_guids[1].is_nil());
}

TEST(OutcomeNames, AreDistinct) {
    EXPECT_EQ(to_string(DownloadOutcome::completed), "completed");
    EXPECT_EQ(to_string(DownloadOutcome::failed_system), "failed_system");
    EXPECT_EQ(to_string(DownloadOutcome::failed_other), "failed_other");
    EXPECT_EQ(to_string(DownloadOutcome::aborted_by_user), "aborted_by_user");
    EXPECT_EQ(to_string(DownloadOutcome::in_progress), "in_progress");
}

}  // namespace
}  // namespace netsession::trace
