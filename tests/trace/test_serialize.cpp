// Dataset (de)serialisation round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "trace/serialize.hpp"

namespace netsession::trace {
namespace {

Dataset sample_dataset() {
    Dataset d;
    DownloadRecord dl;
    dl.guid = Guid{1, 2};
    dl.object = ObjectId{3, 4};
    dl.url_hash = 99;
    dl.cp_code = CpCode{1000};
    dl.object_size = 123_MB;
    dl.start = sim::SimTime{1};
    dl.end = sim::SimTime{2};
    dl.bytes_from_infrastructure = 23_MB;
    dl.bytes_from_peers = 100_MB;
    dl.p2p_enabled = true;
    dl.peers_initially_returned = 7;
    dl.outcome = DownloadOutcome::completed;
    d.log.add(dl);

    LoginRecord login;
    login.guid = dl.guid;
    login.ip = net::IpAddr{0x0A000001};
    login.software_version = 80;
    login.uploads_enabled = true;
    login.cn = CnId{3};
    login.time = sim::SimTime{5};
    login.secondary_guids[0] = SecondaryGuid{7, 8};
    d.log.add(login);

    TransferRecord t;
    t.object = dl.object;
    t.from_guid = Guid{9, 9};
    t.to_guid = dl.guid;
    t.from_ip = net::IpAddr{0x0A000002};
    t.to_ip = login.ip;
    t.bytes = 55;
    t.time = sim::SimTime{6};
    d.log.add(t);

    d.log.add(DnRegistrationRecord{dl.object, dl.guid, sim::SimTime{7}});

    // v6 metrics section: one interned series with two samples.
    const std::uint32_t metric = d.log.intern_metric("edge.bytes_served");
    d.log.add(MetricPointRecord{sim::SimTime{8}, 1.5, metric, 0});
    d.log.add(MetricPointRecord{sim::SimTime{9}, 2.25, metric, 0});

    d.geodb.register_ip(login.ip,
                        net::GeoRecord{net::Location{CountryId{17}, 4, {48.1, 11.5}}, Asn{1001}});
    return d;
}

TEST(Serialize, RoundTripPreservesEverything) {
    const Dataset original = sample_dataset();
    const std::string path = ::testing::TempDir() + "/roundtrip.nstrace";
    ASSERT_TRUE(save_dataset(original, path));

    Dataset loaded;
    ASSERT_TRUE(load_dataset(loaded, path));
    ASSERT_EQ(loaded.log.downloads().size(), 1u);
    const auto& dl = loaded.log.downloads()[0];
    EXPECT_EQ(dl.guid, (Guid{1, 2}));
    EXPECT_EQ(dl.object_size, 123_MB);
    EXPECT_EQ(dl.bytes_from_peers, 100_MB);
    EXPECT_EQ(dl.outcome, DownloadOutcome::completed);
    EXPECT_EQ(dl.peers_initially_returned, 7);

    ASSERT_EQ(loaded.log.logins().size(), 1u);
    EXPECT_EQ(loaded.log.logins()[0].secondary_guids[0], (SecondaryGuid{7, 8}));
    EXPECT_TRUE(loaded.log.logins()[0].uploads_enabled);
    ASSERT_EQ(loaded.log.transfers().size(), 1u);
    EXPECT_EQ(loaded.log.transfers()[0].bytes, 55);
    ASSERT_EQ(loaded.log.registrations().size(), 1u);

    ASSERT_EQ(loaded.log.metric_names().size(), 1u);
    EXPECT_EQ(loaded.log.metric_names()[0], "edge.bytes_served");
    ASSERT_EQ(loaded.log.metric_points().size(), 2u);
    EXPECT_EQ(loaded.log.metric_points()[0].time, sim::SimTime{8});
    EXPECT_EQ(loaded.log.metric_points()[0].value, 1.5);
    EXPECT_EQ(loaded.log.metric_points()[1].value, 2.25);
    EXPECT_EQ(loaded.log.metric_points()[1].metric, 0u);

    ASSERT_EQ(loaded.geodb.size(), 1u);
    const auto geo = loaded.geodb.lookup(net::IpAddr{0x0A000001});
    ASSERT_TRUE(geo.has_value());
    EXPECT_EQ(geo->asn.value, 1001u);
    EXPECT_EQ(geo->location.country.value, 17);
    EXPECT_DOUBLE_EQ(geo->location.point.lat, 48.1);
    std::remove(path.c_str());
}

TEST(Serialize, LoadReplacesExistingContents) {
    const std::string path = ::testing::TempDir() + "/replace.nstrace";
    ASSERT_TRUE(save_dataset(sample_dataset(), path));
    Dataset target = sample_dataset();  // already populated
    ASSERT_TRUE(load_dataset(target, path));
    EXPECT_EQ(target.log.downloads().size(), 1u) << "load clears previous records";
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileFails) {
    Dataset d;
    EXPECT_FALSE(load_dataset(d, "/nonexistent/definitely/missing.nstrace"));
}

TEST(Serialize, CorruptMagicRejected) {
    const std::string path = ::testing::TempDir() + "/bad.nstrace";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a trace file at all";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    Dataset d;
    EXPECT_FALSE(load_dataset(d, path));
    std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileRejected) {
    const std::string path = ::testing::TempDir() + "/trunc.nstrace";
    ASSERT_TRUE(save_dataset(sample_dataset(), path));
    // Chop the file in half.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    Dataset d;
    EXPECT_FALSE(load_dataset(d, path));
    std::remove(path.c_str());
}

TEST(Serialize, FailedLoadLeavesTargetUntouched) {
    const std::string path = ::testing::TempDir() + "/trunc_keep.nstrace";
    ASSERT_TRUE(save_dataset(sample_dataset(), path));
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

    // The target already holds good data; a failed load must not clobber it.
    Dataset target = sample_dataset();
    target.log.add(DnRegistrationRecord{ObjectId{42, 42}, Guid{42, 42}, sim::SimTime{100}});
    EXPECT_FALSE(load_dataset(target, path));
    ASSERT_EQ(target.log.registrations().size(), 2u);
    EXPECT_EQ(target.log.registrations()[1].guid, (Guid{42, 42}));
    EXPECT_EQ(target.log.downloads().size(), 1u);
    EXPECT_EQ(target.geodb.size(), 1u);
    std::remove(path.c_str());
}

TEST(Serialize, SaveIsAtomicReplace) {
    const std::string path = ::testing::TempDir() + "/atomic.nstrace";
    const std::string tmp = path + ".tmp";
    ASSERT_TRUE(save_dataset(sample_dataset(), path));
    struct stat st;
    EXPECT_NE(stat(tmp.c_str(), &st), 0) << "no temp file left behind after success";

    // Force the next save to fail at temp-file creation: a directory squats
    // on the temp path. The existing cache must survive intact.
    ASSERT_EQ(mkdir(tmp.c_str(), 0755), 0);
    Dataset bigger = sample_dataset();
    bigger.log.add(DnRegistrationRecord{ObjectId{5, 5}, Guid{5, 5}, sim::SimTime{50}});
    EXPECT_FALSE(save_dataset(bigger, path));
    ASSERT_EQ(rmdir(tmp.c_str()), 0);

    Dataset loaded;
    ASSERT_TRUE(load_dataset(loaded, path)) << "old cache must still be valid";
    EXPECT_EQ(loaded.log.registrations().size(), 1u) << "old contents, not the failed write";
    std::remove(path.c_str());
}

TEST(Serialize, BufferedFallbackPathRoundTrips) {
    // NS_TRACE_NO_MMAP forces the fread path; the same file must load
    // identically through both.
    const std::string path = ::testing::TempDir() + "/nommap.nstrace";
    ASSERT_TRUE(save_dataset(sample_dataset(), path));

    Dataset mapped;
    ASSERT_TRUE(load_dataset(mapped, path));

    setenv("NS_TRACE_NO_MMAP", "1", 1);
    Dataset buffered;
    const bool ok = load_dataset(buffered, path);
    unsetenv("NS_TRACE_NO_MMAP");
    ASSERT_TRUE(ok);

    EXPECT_EQ(buffered.log.total_entries(), mapped.log.total_entries());
    ASSERT_EQ(buffered.log.downloads().size(), mapped.log.downloads().size());
    EXPECT_EQ(buffered.log.downloads()[0].guid, mapped.log.downloads()[0].guid);
    EXPECT_EQ(buffered.log.metric_points().size(), mapped.log.metric_points().size());
    EXPECT_EQ(buffered.geodb.size(), mapped.geodb.size());
    std::remove(path.c_str());
}

TEST(Serialize, ViewSectionsMaterializeOnMutation) {
    const std::string path = ::testing::TempDir() + "/view.nstrace";
    ASSERT_TRUE(save_dataset(sample_dataset(), path));
    Dataset loaded;
    ASSERT_TRUE(load_dataset(loaded, path));
    std::remove(path.c_str());  // views must keep the backing storage alive

    const Bytes before = loaded.log.downloads()[0].object_size;
    loaded.log.downloads().front().object_size = before + 1;  // copy-on-write
    EXPECT_FALSE(loaded.log.downloads().is_view());
    EXPECT_EQ(loaded.log.downloads()[0].object_size, before + 1);
    loaded.log.add(DownloadRecord{});
    EXPECT_EQ(loaded.log.downloads().size(), 2u);
}

TEST(Serialize, EmptyDatasetRoundTrips) {
    const std::string path = ::testing::TempDir() + "/empty.nstrace";
    ASSERT_TRUE(save_dataset(Dataset{}, path));
    Dataset d;
    ASSERT_TRUE(load_dataset(d, path));
    EXPECT_EQ(d.log.total_entries(), 0u);
    EXPECT_EQ(d.geodb.size(), 0u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace netsession::trace
