// Workload generators: distributions, population, provider catalogs.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "workload/behavior.hpp"
#include "workload/distributions.hpp"
#include "workload/population.hpp"
#include "workload/providers.hpp"

namespace netsession::workload {
namespace {

TEST(Zipf, PmfSumsToOneAndDecays) {
    ZipfSampler z(100, 1.0);
    double sum = 0;
    for (std::size_t k = 0; k < 100; ++k) sum += z.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(z.pmf(0), z.pmf(1));
    EXPECT_GT(z.pmf(10), z.pmf(50));
    EXPECT_NEAR(z.pmf(0) / z.pmf(9), 10.0, 1e-6);  // 1/k with alpha=1
}

TEST(Zipf, SamplingMatchesPmf) {
    ZipfSampler z(50, 0.9);
    Rng rng(3);
    std::vector<int> counts(50, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.pmf(0), 0.01);
    EXPECT_NEAR(static_cast<double>(counts[10]) / n, z.pmf(10), 0.005);
    EXPECT_GT(counts[0], counts[49]);
}

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, RankPlotSlopeMatchesAlpha) {
    const double alpha = GetParam();
    ZipfSampler z(1000, alpha);
    // The pmf itself is the ideal rank plot; its log-log slope is -alpha.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int n = 0;
    for (std::size_t k = 0; k < 1000; k += 7) {
        const double lx = std::log10(static_cast<double>(k + 1));
        const double ly = std::log10(z.pmf(k));
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
        ++n;
    }
    const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    EXPECT_NEAR(slope, -alpha, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest, ::testing::Values(0.7, 0.9, 1.1, 1.3));

TEST(Diurnal, MeanIsAboutOneAndPeakInEvening) {
    double sum = 0;
    double peak = 0, peak_hour = 0;
    for (int h = 0; h < 240; ++h) {
        const double v = diurnal_intensity(h / 10.0);
        EXPECT_GT(v, 0.0);
        sum += v;
        if (v > peak) {
            peak = v;
            peak_hour = h / 10.0;
        }
    }
    EXPECT_NEAR(sum / 240, 1.0, 0.15);
    EXPECT_GT(peak_hour, 16.0);
    EXPECT_LT(peak_hour, 23.0);
    EXPECT_LE(peak, diurnal_peak() + 1e-9);
    // Night trough well below daytime.
    EXPECT_LT(diurnal_intensity(4.0), 0.5 * diurnal_intensity(20.0));
}

struct PopFixture {
    net::AsGraph graph;
    PopulationGenerator gen;

    PopFixture()
        : graph(net::AsGraph::generate(make_config(), Rng(4))),
          gen(PopulationConfig{}, graph, Rng(5)) {}

    static net::AsGraphConfig make_config() {
        net::AsGraphConfig c;
        c.total_ases = 200;
        return c;
    }
};

TEST(Population, SpecsAreInternallyConsistent) {
    PopFixture f;
    for (int i = 0; i < 500; ++i) {
        const PeerSpec spec = f.gen.next();
        EXPECT_EQ(f.graph.info(spec.asn).country, spec.location.country);
        EXPECT_GT(spec.up, 0.0);
        EXPECT_GT(spec.down, 0.0);
        EXPECT_GE(spec.down, spec.up) << "broadband is asymmetric";
        const auto& country = net::country(spec.location.country);
        EXPECT_LT(net::haversine_km(spec.location.point, country.center),
                  country.spread_deg * 111.0 * 6.0);
    }
}

TEST(Population, CountrySharesTrackWeights) {
    PopFixture f;
    std::map<std::uint16_t, int> counts;
    const int n = 20000;
    for (int i = 0; i < n; ++i) ++counts[f.gen.sample_country().value];
    const net::CountryInfo* de = net::find_country("DE");
    double weight_sum = 0;
    for (const auto& c : net::countries()) weight_sum += c.peer_weight;
    EXPECT_NEAR(static_cast<double>(counts[de->id.value]) / n, de->peer_weight / weight_sum, 0.01);
}

TEST(Population, NatMixMatchesDefaults) {
    PopFixture f;
    std::array<int, net::kNatTypeCount> counts{};
    const int n = 20000;
    for (int i = 0; i < n; ++i) ++counts[static_cast<int>(f.gen.sample_nat())];
    const auto& mix = net::default_nat_mix();
    for (int t = 0; t < net::kNatTypeCount; ++t)
        EXPECT_NEAR(static_cast<double>(counts[t]) / n, mix[t], 0.02);
}

TEST(Population, LocationNearStaysClose) {
    PopFixture f;
    const net::CountryInfo* de = net::find_country("DE");
    const auto base = f.gen.location_in(de->id);
    for (int i = 0; i < 50; ++i) {
        const auto near = f.gen.location_near(base, 6.0);
        EXPECT_EQ(near.country, base.country);
        EXPECT_LT(net::haversine_km(near.point, base.point), 40.0);
    }
}

TEST(Providers, DefaultProfilesMatchPaperTables) {
    const auto profiles = default_providers(5);
    ASSERT_EQ(profiles.size(), 15u);
    // Customer F is 100% Europe (Table 2).
    const auto& f = profiles[5];
    EXPECT_EQ(f.name, "Customer F");
    EXPECT_DOUBLE_EQ(f.region_mix[6], 1.0);
    for (int r = 0; r < kRegionColumns; ++r)
        if (r != 6) { EXPECT_DOUBLE_EQ(f.region_mix[r], 0.0); }
    // Customer D ships uploads-enabled binaries (Table 4: 94%).
    EXPECT_NEAR(profiles[3].default_uploads_enabled, 0.94, 1e-9);
    EXPECT_LT(profiles[0].default_uploads_enabled, 0.01);
    // Rows sum to ~1.
    for (int i = 0; i < 10; ++i) {
        double sum = 0;
        for (const double v : profiles[static_cast<std::size_t>(i)].region_mix) sum += v;
        // The paper's printed rows round to integers and can sum to 99-101.
        EXPECT_NEAR(sum, 1.0, 0.025) << profiles[static_cast<std::size_t>(i)].name;
    }
}

TEST(CatalogBundle, PublishesAllObjectsWithPolicies) {
    edge::Catalog catalog;
    const CatalogBundle bundle(default_providers(0), catalog, Rng(6));
    std::size_t expected = 0;
    for (const auto& p : bundle.profiles()) expected += static_cast<std::size_t>(p.objects);
    EXPECT_EQ(catalog.size(), expected);

    // p2p-enabled objects are a small share of files but they are large and
    // top-ranked (§4.4, §5.1).
    int p2p_files = 0;
    Bytes p2p_bytes = 0, all_bytes = 0;
    for (const auto& entry : catalog.entries()) {
        all_bytes += entry->object.size();
        if (entry->policy.p2p_enabled) {
            ++p2p_files;
            p2p_bytes += entry->object.size();
            EXPECT_GE(entry->object.size(), 300_MB) << "p2p is enabled on large objects";
        }
    }
    const double file_frac = static_cast<double>(p2p_files) / static_cast<double>(catalog.size());
    EXPECT_LT(file_frac, 0.05);
    EXPECT_GT(file_frac, 0.005);
    // Unweighted by popularity; the download-weighted share (§5.1's 57.4%)
    // is much higher because p2p objects occupy the top ranks.
    EXPECT_GT(static_cast<double>(p2p_bytes) / static_cast<double>(all_bytes), 0.08);
}

TEST(CatalogBundle, SamplingIsRegionAffine) {
    edge::Catalog catalog;
    const CatalogBundle bundle(default_providers(0), catalog, Rng(7));
    Rng rng(8);
    // Customer J is US-heavy (Table 2 row J: 42% US East); sampling for the
    // US-East column should hit J far more often than for the Europe column.
    std::map<std::uint32_t, int> us_hits, eu_hits;
    for (int i = 0; i < 5000; ++i) {
        ++us_hits[catalog.find(bundle.sample_object(0, rng))->object.provider().value];
        ++eu_hits[catalog.find(bundle.sample_object(6, rng))->object.provider().value];
    }
    const double j_us = static_cast<double>(us_hits[1009]) / 5000;
    const double j_eu = static_cast<double>(eu_hits[1009]) / 5000;
    EXPECT_GT(j_us, 2.0 * j_eu);
}

TEST(CatalogBundle, SampleObjectOfStaysWithinProvider) {
    edge::Catalog catalog;
    const CatalogBundle bundle(default_providers(0), catalog, Rng(9));
    Rng rng(10);
    for (int i = 0; i < 200; ++i) {
        const ObjectId id = bundle.sample_object_of(3, rng);
        EXPECT_EQ(catalog.find(id)->object.provider().value, 1003u);
    }
}

TEST(Behavior, RegionColumnMapping) {
    EXPECT_EQ(UserDriver::region_column(net::find_country("IN")->id), 3);
    EXPECT_EQ(UserDriver::region_column(net::find_country("CN")->id), 4);
    EXPECT_EQ(UserDriver::region_column(net::find_country("DE")->id), 6);
    EXPECT_EQ(UserDriver::region_column(net::find_country("AU")->id), 8);
    EXPECT_EQ(UserDriver::region_column(net::find_country("BR")->id), 2);
}

}  // namespace
}  // namespace netsession::workload
