// UserDriver behaviour model, verified end-to-end through small deployments
// with exaggerated knobs.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/guid_graph.hpp"
#include "analysis/login_index.hpp"
#include "analysis/measurement.hpp"
#include "core/simulation.hpp"

namespace netsession::workload {
namespace {

SimulationConfig base_config(std::uint64_t seed) {
    SimulationConfig config;
    config.seed = seed;
    config.peers = 400;
    config.as_graph.total_ases = 200;
    config.behavior.warmup = sim::days(0.5);
    config.behavior.window = sim::days(3.0);
    config.behavior.downloads_per_peer_per_month = 3.0;
    return config;
}

TEST(Behavior, SessionsProduceLoginsAtPlausibleRate) {
    Simulation s(base_config(3));
    s.run();
    const double logins_per_peer_day =
        static_cast<double>(s.trace().logins().size()) / 400.0 / 3.0;
    // sessions_per_day=1.4 plus reconnects; expect the same order of magnitude.
    EXPECT_GT(logins_per_peer_day, 0.5);
    EXPECT_LT(logins_per_peer_day, 4.0);
}

TEST(Behavior, LoginsFollowTheDiurnalPattern) {
    Simulation s(base_config(5));
    s.run();
    // Local-hour histogram of logins: evening must dominate the night trough.
    double night = 0, evening = 0;
    for (const auto& l : s.trace().logins()) {
        const auto geo = s.geodb().lookup(l.ip);
        if (!geo) continue;
        const double offset = std::round(geo->location.point.lon / 15.0);
        double h = std::fmod(l.time.hours() + offset, 24.0);
        if (h < 0) h += 24.0;
        if (h >= 2.0 && h < 6.0) ++night;
        if (h >= 18.0 && h < 22.0) ++evening;
    }
    ASSERT_GT(evening, 0);
    EXPECT_GT(evening, 2.0 * night) << "evening peak vs night trough (Fig 3c)";
}

TEST(Behavior, MobilityClassesShowUpInTheTrace) {
    auto config = base_config(7);
    config.behavior.frac_dual_far = 0.5;  // exaggerate
    config.behavior.frac_traveler = 0.2;
    Simulation s(config);
    s.run();
    const analysis::LoginIndex logins(s.trace());
    const auto m = analysis::mobility_stats(s.trace(), logins, s.geodb());
    EXPECT_LT(m.frac_single_as, 0.7) << "with half the users dual-homed, many multi-AS GUIDs";
    EXPECT_GT(m.frac_more_as + m.frac_two_as, 0.3);
}

TEST(Behavior, StationaryPopulationStaysPut) {
    auto config = base_config(9);
    config.behavior.frac_dual_near = 0;
    config.behavior.frac_dual_far = 0;
    config.behavior.frac_traveler = 0;
    Simulation s(config);
    s.run();
    const analysis::LoginIndex logins(s.trace());
    const auto m = analysis::mobility_stats(s.trace(), logins, s.geodb());
    EXPECT_DOUBLE_EQ(m.frac_single_as, 1.0);
    EXPECT_DOUBLE_EQ(m.frac_within_10km, 1.0);
}

TEST(Behavior, SettingTogglesAreObservedBetweenLogins) {
    auto config = base_config(11);
    config.behavior.toggle_prob_initially_disabled = 0.5;  // exaggerate
    config.behavior.toggle_prob_initially_enabled = 0.5;
    Simulation s(config);
    s.run();
    const analysis::LoginIndex logins(s.trace());
    const auto t3 = analysis::upload_setting_changes(logins);
    const auto changed = t3.initially_disabled[1] + t3.initially_disabled[2] +
                         t3.initially_enabled[1] + t3.initially_enabled[2];
    EXPECT_GT(changed, 50) << "half the population toggles inside the window";
}

TEST(Behavior, AnomalyMachineryYieldsFig12Trees) {
    auto config = base_config(13);
    config.behavior.frac_update_failure = 0.2;  // exaggerate all anomalies
    config.behavior.frac_restored_backup = 0.1;
    config.behavior.frac_reimaged = 0.1;
    config.behavior.frac_irregular = 0.1;
    config.behavior.sessions_per_day = 4.0;  // enough starts for >=3 vertices
    Simulation s(config);
    s.run();
    const auto stats = analysis::classify_guid_graphs(s.trace());
    ASSERT_GT(stats.graphs, 100);
    EXPECT_GT(stats.trees(), 20) << "rollbacks visible in the window";
    EXPECT_GT(stats.long_plus_short, 0);
    EXPECT_GT(stats.several_branches, 0);
    EXPECT_GT(stats.irregular, 0);
}

TEST(Behavior, AlwaysOnMachinesStayOnline) {
    auto config = base_config(17);
    config.behavior.frac_always_on = 1.0;
    Simulation s(config);
    s.run();
    int online = 0;
    for (const auto& c : s.driver().clients())
        if (c->running()) ++online;
    EXPECT_GT(online, 200) << "an always-on population keeps most machines up";
}

TEST(Behavior, AttackerFractionWiresTamperedReports) {
    auto config = base_config(19);
    config.behavior.attacker_fraction = 1.0;  // everyone lies
    config.behavior.downloads_per_peer_per_month = 20.0;
    Simulation s(config);
    s.run();
    // Reports for downloads with ~zero infrastructure bytes inflate to a
    // few bytes and slip under the filter's slack — harmlessly. Everything
    // with a real infra component must be caught.
    EXPECT_LT(s.accounting().accepted(), 5);
    EXPECT_GT(s.accounting().rejected(), 20);
}

TEST(Behavior, ProviderLoyaltyConcentratesDownloads) {
    auto config = base_config(21);
    config.behavior.provider_loyalty = 1.0;
    config.behavior.downloads_per_peer_per_month = 20.0;
    Simulation s(config);
    s.run();
    // With full loyalty, each GUID downloads from exactly one provider.
    std::unordered_map<Guid, std::unordered_set<std::uint32_t>> per_guid;
    for (const auto& d : s.trace().downloads()) per_guid[d.guid].insert(d.cp_code.value);
    int multi = 0;
    for (const auto& [guid, cps] : per_guid)
        if (cps.size() > 1) ++multi;
    EXPECT_EQ(multi, 0);
}

}  // namespace
}  // namespace netsession::workload
