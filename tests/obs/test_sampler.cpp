// Sampler cadence, v6 metric-record round trips, and the byte-identity
// guarantee for sampled runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "core/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/simulator.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_log.hpp"

namespace netsession::obs {
namespace {

struct Fixture {
    sim::Simulator sim;
    trace::TraceLog log;
    Registry registry;
    Counter events;

    Fixture() { registry.add_counter("test.events", &events); }
};

TEST(Sampler, TakesOneSamplePerIntervalPlusClosingSample) {
    Fixture f;
    SamplerConfig config;
    config.interval = sim::hours(1.0);
    Sampler sampler(f.sim, f.registry, f.log, config);
    // Ticks fire at 1h..9h; the 10h tick lands at `until` and becomes the
    // closing sample, for 10 total.
    sampler.start(sim::SimTime{} + sim::hours(10.0));
    f.sim.run();
    sampler.finish();  // already closed by the 10h tick — must not duplicate
    EXPECT_EQ(sampler.samples_taken(), 10u);
    EXPECT_EQ(f.log.metric_points().size(), 10u);
    ASSERT_EQ(f.log.metric_names().size(), 1u);
    EXPECT_EQ(f.log.metric_names()[0], "test.events");
    // Snapshots carry the counter value at their sample time.
    EXPECT_EQ(f.log.metric_points().front().time, sim::SimTime{} + sim::hours(1.0));
    EXPECT_EQ(f.log.metric_points().back().time, sim::SimTime{} + sim::hours(10.0));
}

TEST(Sampler, FinishClosesRunsWhoseCadenceMissesTheWindowEnd) {
    Fixture f;
    SamplerConfig config;
    config.interval = sim::hours(4.0);
    Sampler sampler(f.sim, f.registry, f.log, config);
    sampler.start(sim::SimTime{} + sim::hours(10.0));
    f.sim.run_until(sim::SimTime{} + sim::hours(10.0));
    // Ticks at 4h and 8h; the 12h tick never fires inside the window, so the
    // explicit finish() supplies the 10h closing sample.
    EXPECT_EQ(sampler.samples_taken(), 2u);
    sampler.finish();
    sampler.finish();
    EXPECT_EQ(sampler.samples_taken(), 3u) << "finish() is idempotent";
}

TEST(Sampler, DisabledSamplerNeverSamples) {
    Fixture f;
    SamplerConfig config;
    config.enabled = false;
    Sampler sampler(f.sim, f.registry, f.log, config);
    sampler.start(sim::SimTime{} + sim::hours(10.0));
    f.sim.run();
    sampler.finish();
    EXPECT_EQ(sampler.samples_taken(), 0u);
    EXPECT_TRUE(f.log.metric_points().empty());
}

TEST(Sampler, HistogramsExpandIntoCountAndSumSeries) {
    Fixture f;
    Histogram h;
    h.record(100.0);
    h.record(300.0);
    f.registry.add_histogram("test.sizes", &h);
    SamplerConfig config;
    Sampler sampler(f.sim, f.registry, f.log, config);
    sampler.sample_now();
    const auto& names = f.log.metric_names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "test.events");
    EXPECT_EQ(names[1], "test.sizes.count");
    EXPECT_EQ(names[2], "test.sizes.sum");
    ASSERT_EQ(f.log.metric_points().size(), 3u);
    EXPECT_DOUBLE_EQ(f.log.metric_points()[1].value, 2.0);
    EXPECT_DOUBLE_EQ(f.log.metric_points()[2].value, 400.0);
}

TEST(Sampler, WarmupClearKeepsNamesDropsPoints) {
    // UserDriver::run() clears the trace at the warm-up boundary. Interned
    // series ids must survive that clear or every post-warm-up point would
    // dangle.
    Fixture f;
    SamplerConfig config;
    Sampler sampler(f.sim, f.registry, f.log, config);
    sampler.sample_now();
    ASSERT_FALSE(f.log.metric_points().empty());
    f.log.clear();
    EXPECT_TRUE(f.log.metric_points().empty());
    ASSERT_EQ(f.log.metric_names().size(), 1u) << "name table survives the warm-up clear";
    sampler.sample_now();
    EXPECT_EQ(f.log.metric_points().size(), 1u);
    EXPECT_EQ(f.log.metric_points()[0].metric, 0u) << "same interned id after clear";
}

TEST(Sampler, MetricSectionRoundTripsThroughSerialization) {
    Fixture f;
    f.events.inc(7);
    SamplerConfig config;
    config.interval = sim::hours(2.0);
    Sampler sampler(f.sim, f.registry, f.log, config);
    sampler.start(sim::SimTime{} + sim::hours(6.0));
    f.sim.run();

    trace::Dataset original;
    original.log = f.log;
    const std::string path = ::testing::TempDir() + "/metrics_roundtrip.nstrace";
    ASSERT_TRUE(trace::save_dataset(original, path));
    trace::Dataset loaded;
    ASSERT_TRUE(trace::load_dataset(loaded, path));

    ASSERT_EQ(loaded.log.metric_names(), original.log.metric_names());
    const auto& a = original.log.metric_points();
    const auto& b = loaded.log.metric_points();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].metric, b[i].metric);
        EXPECT_EQ(a[i].value, b[i].value) << "bit-exact doubles, not approximate";
    }
    std::filesystem::remove(path);
}

TEST(Sampler, SampledRunsAreByteIdenticalForSameSeed) {
    // The byte-identity contract (docs/SIMULATOR.md §3) extends to the v6
    // metrics section: sampling is driven purely by simulated time and the
    // registry, so two identical runs serialize identically.
    SimulationConfig config;
    config.seed = 1234;
    config.peers = 200;
    config.behavior.warmup = sim::days(1.0);
    config.behavior.window = sim::days(1.0);
    config.behavior.downloads_per_peer_per_month = 25.0;
    config.as_graph.total_ases = 200;

    const auto run_once = [&](const std::string& path) {
        Simulation s(config);
        s.run();
#if NS_METRICS_ENABLED
        EXPECT_FALSE(s.trace().metric_points().empty()) << "sampler must have run";
#else
        EXPECT_TRUE(s.trace().metric_points().empty());
#endif
        trace::Dataset dataset;
        dataset.log = s.trace();
        ASSERT_TRUE(trace::save_dataset(dataset, path));
    };
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path_a = (dir / "ns_sampled_a.nstrace").string();
    const std::string path_b = (dir / "ns_sampled_b.nstrace").string();
    run_once(path_a);
    run_once(path_b);
    const auto read_all = [](const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    };
    EXPECT_TRUE(read_all(path_a) == read_all(path_b))
        << "sampled traces differ between identical runs";
    std::filesystem::remove(path_a);
    std::filesystem::remove(path_b);
}

}  // namespace
}  // namespace netsession::obs
