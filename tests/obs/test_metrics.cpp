// Registry semantics: instrument types, bucket boundaries, registration
// rules, and the JSON/Prometheus exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace netsession::obs {
namespace {

// --- Histogram bucketing ------------------------------------------------------

TEST(Histogram, SmallValuesLandInBucketZero) {
    EXPECT_EQ(Histogram::bucket_of(0.0), 0);
    EXPECT_EQ(Histogram::bucket_of(0.5), 0);
    EXPECT_EQ(Histogram::bucket_of(1.0), 0);
    EXPECT_EQ(Histogram::bucket_of(-4.0), 0) << "negatives clamp to bucket 0";
    EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::quiet_NaN()), 0);
}

TEST(Histogram, ExactPowersOfTwoAreInclusiveUpperBoundaries) {
    // Bucket b covers (2^(b-1), 2^b]: an exact power of two belongs to its
    // own bucket, anything measurably above it spills into the next. (An
    // increment of one ulp can vanish inside log2's rounding, so probe with a
    // small relative offset instead.)
    for (int b = 1; b < 40; ++b) {
        const double hi = Histogram::bucket_hi(b);
        EXPECT_EQ(Histogram::bucket_of(hi), b) << "2^" << b << " inclusive";
        EXPECT_EQ(Histogram::bucket_of(hi * 1.001), b + 1) << "just above 2^" << b;
        EXPECT_EQ(Histogram::bucket_of(hi - hi / 4), b) << "interior of bucket " << b;
    }
}

TEST(Histogram, BoundariesAreConsistent) {
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        EXPECT_LT(Histogram::bucket_lo(b), Histogram::bucket_hi(b));
        if (b > 0) { EXPECT_EQ(Histogram::bucket_lo(b), Histogram::bucket_hi(b - 1)); }
    }
    EXPECT_EQ(Histogram::bucket_lo(0), 0.0);
}

TEST(Histogram, HugeValuesClampIntoLastBucket) {
    EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, 200)), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::max()),
              Histogram::kBuckets - 1);
    // The largest representable uint64 byte count still fits the range.
    EXPECT_LT(Histogram::bucket_of(1.8e19), Histogram::kBuckets);
}

TEST(Histogram, RecordAccumulatesCountSumMean) {
    Histogram h;
    EXPECT_EQ(h.mean(), 0.0) << "empty histogram has mean 0, not NaN";
    h.record(2.0);
    h.record(6.0);
    h.record(1.0);
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.sum, 9.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_EQ(h.buckets[0], 1u);  // 1.0
    EXPECT_EQ(h.buckets[1], 1u);  // 2.0
    EXPECT_EQ(h.buckets[3], 1u);  // 6.0 in (4, 8]
}

// --- Counter / Gauge ----------------------------------------------------------

TEST(Counter, OverflowWrapsModulo2To64) {
    Counter c;
    c.value = std::numeric_limits<std::uint64_t>::max();
    c.inc();
    EXPECT_EQ(c.get(), 0u) << "unsigned wrap is well-defined, not UB";
    c.inc(5);
    EXPECT_EQ(c.get(), 5u);
}

TEST(Gauge, SetAndAddMoveBothWays) {
    Gauge g;
    g.set(10.0);
    g.add(-3.5);
    EXPECT_DOUBLE_EQ(g.get(), 6.5);
}

// --- Registry -----------------------------------------------------------------

TEST(Registry, PreservesRegistrationOrder) {
    Counter a, b;
    Gauge g;
    Histogram h;
    Registry r;
    r.add_counter("z.second", &b);
    r.add_counter("a.first", &a);
    r.add_gauge("m.gauge", &g);
    r.add_histogram("m.hist", &h);
    r.add_computed("m.computed", [] { return 42.0; });
    ASSERT_EQ(r.size(), 5u);
    EXPECT_EQ(r.entries()[0].name, "z.second") << "order is registration, not lexicographic";
    EXPECT_EQ(r.entries()[1].name, "a.first");
    EXPECT_EQ(r.entries()[4].name, "m.computed");
}

TEST(Registry, DuplicateNamesIgnoredFirstWins) {
    Counter first, second;
    Registry r;
    r.add_counter("dup", &first);
    r.add_counter("dup", &second);
    ASSERT_EQ(r.size(), 1u);
    first.inc(7);
    second.inc(100);
    EXPECT_DOUBLE_EQ(Registry::scalar_value(*r.find("dup")), 7.0);
}

TEST(Registry, ScalarValuePerKind) {
    Counter c;
    c.inc(3);
    Gauge g;
    g.set(2.5);
    Histogram h;
    h.record(10.0);
    h.record(20.0);
    Registry r;
    r.add_counter("c", &c);
    r.add_gauge("g", &g);
    r.add_histogram("h", &h);
    r.add_computed("f", [] { return -1.0; });
    EXPECT_DOUBLE_EQ(Registry::scalar_value(*r.find("c")), 3.0);
    EXPECT_DOUBLE_EQ(Registry::scalar_value(*r.find("g")), 2.5);
    EXPECT_DOUBLE_EQ(Registry::scalar_value(*r.find("h")), 2.0) << "histogram scalar = count";
    EXPECT_DOUBLE_EQ(Registry::scalar_value(*r.find("f")), -1.0);
    EXPECT_EQ(r.find("missing"), nullptr);
}

// --- Macros -------------------------------------------------------------------

struct FakeBlock {
    Counter hits;
    Histogram sizes;
};

TEST(Macros, NullPointerFormsAreSafeNoOps) {
    FakeBlock* none = nullptr;
    NS_OBS_INC_P(none, hits);
    NS_OBS_ADD_P(none, hits, 10);
    NS_OBS_OBSERVE_P(none, sizes, 5.0);
    SUCCEED() << "no crash on unwired metrics block";
}

#if NS_METRICS_ENABLED
TEST(Macros, PointerFormsMutateThroughLivePointer) {
    FakeBlock block;
    FakeBlock* p = &block;
    NS_OBS_INC_P(p, hits);
    NS_OBS_ADD_P(p, hits, 4);
    NS_OBS_OBSERVE_P(p, sizes, 100.0);
    EXPECT_EQ(block.hits.get(), 5u);
    EXPECT_EQ(block.sizes.count, 1u);
}

TEST(Macros, DirectFormsMutate) {
    Counter c;
    Gauge g;
    Histogram h;
    NS_OBS_INC(c);
    NS_OBS_ADD(c, 2);
    NS_OBS_SET(g, 9);
    NS_OBS_OBSERVE(h, 3.0);
    EXPECT_EQ(c.get(), 3u);
    EXPECT_DOUBLE_EQ(g.get(), 9.0);
    EXPECT_EQ(h.count, 1u);
}
#endif

// --- Exporters ----------------------------------------------------------------

Registry sample_registry(Counter& c, Gauge& g, Histogram& h) {
    Registry r;
    r.add_counter("edge.requests", &c);
    r.add_gauge("edge.online", &g);
    r.add_histogram("client.download_bytes", &h);
    r.add_computed("flow.active", [] { return 12.0; });
    return r;
}

TEST(Export, JsonIsDeterministicAndComplete) {
    Counter c;
    c.inc(41);
    Gauge g;
    g.set(19.0);
    Histogram h;
    h.record(3.0);
    h.record(1000.0);
    const Registry r = sample_registry(c, g, h);
    const std::string json = to_json(r);
    EXPECT_EQ(json, to_json(r)) << "same state must render identically";
    EXPECT_NE(json.find("\"edge.requests\": 41"), std::string::npos) << json;
    EXPECT_NE(json.find("\"edge.online\": 19"), std::string::npos) << json;
    EXPECT_NE(json.find("\"flow.active\": 12"), std::string::npos) << json;
    EXPECT_NE(json.find("\"client.download_bytes\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;
    // Sparse buckets: two observations -> exactly two [hi, n] pairs.
    EXPECT_NE(json.find("[4, 1]"), std::string::npos) << json;
    EXPECT_NE(json.find("[1024, 1]"), std::string::npos) << json;
    EXPECT_EQ(json.find("[2, "), std::string::npos) << "empty buckets omitted: " << json;
}

TEST(Export, PrometheusTextExposition) {
    Counter c;
    c.inc(5);
    Gauge g;
    Histogram h;
    h.record(2.0);
    const Registry r = sample_registry(c, g, h);
    const std::string text = to_prometheus(r);
    EXPECT_NE(text.find("# TYPE edge_requests counter"), std::string::npos) << text;
    EXPECT_NE(text.find("edge_requests 5"), std::string::npos) << text;
    EXPECT_NE(text.find("# TYPE client_download_bytes histogram"), std::string::npos) << text;
    EXPECT_NE(text.find("client_download_bytes_count 1"), std::string::npos) << text;
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos) << "cumulative +Inf bucket required";
}

}  // namespace
}  // namespace netsession::obs
