// Static world data: structural invariants the generators rely on.
#include <gtest/gtest.h>

#include <set>

#include "net/world_data.hpp"

namespace netsession::net {
namespace {

TEST(WorldData, FewerThanTwentyRegions) {
    // Paper §3.7: "the current deployment has less than 20 network regions".
    EXPECT_LT(regions().size(), 20u);
    EXPECT_GE(regions().size(), 10u);
}

TEST(WorldData, RegionIdsAreTheirIndices) {
    for (std::size_t i = 0; i < regions().size(); ++i)
        EXPECT_EQ(regions()[i].id.value, i);
}

TEST(WorldData, CountryIdsAreTheirIndices) {
    for (std::size_t i = 0; i < countries().size(); ++i)
        EXPECT_EQ(countries()[i].id.value, i);
}

TEST(WorldData, EveryCountryHasAValidRegion) {
    for (const auto& c : countries()) {
        ASSERT_LT(c.region.value, regions().size()) << c.name;
        // The US entries intentionally sit in US regions whose continent
        // matches; other countries' regions may differ in continent only for
        // cross-continental constructs (e.g. Turkey in MiddleEast).
    }
}

TEST(WorldData, EveryRegionHasAtLeastOneCountry) {
    std::set<std::uint16_t> covered;
    for (const auto& c : countries()) covered.insert(c.region.value);
    for (const auto& r : regions())
        EXPECT_TRUE(covered.contains(r.id.value)) << r.name;
}

TEST(WorldData, WeightsArePositiveAndRoughlyNormalised) {
    double sum = 0;
    for (const auto& c : countries()) {
        EXPECT_GT(c.peer_weight, 0.0) << c.name;
        sum += c.peer_weight;
    }
    EXPECT_NEAR(sum, 1.0, 0.1);
}

TEST(WorldData, ContinentSharesMatchPaperShape) {
    // Fig 2: most peers in Europe (~35%) and North America (~27%).
    double by_continent[kContinentCount] = {};
    double sum = 0;
    for (const auto& c : countries()) {
        by_continent[static_cast<int>(c.continent)] += c.peer_weight;
        sum += c.peer_weight;
    }
    const double na = by_continent[static_cast<int>(Continent::north_america)] / sum;
    const double eu = by_continent[static_cast<int>(Continent::europe)] / sum;
    EXPECT_NEAR(na, 0.27, 0.06);
    EXPECT_NEAR(eu, 0.35, 0.06);
    EXPECT_GT(eu, na);
}

TEST(WorldData, CoordinatesAreOnTheGlobe) {
    for (const auto& c : countries()) {
        EXPECT_GE(c.center.lat, -60.0) << c.name;
        EXPECT_LE(c.center.lat, 75.0) << c.name;
        EXPECT_GE(c.center.lon, -180.0) << c.name;
        EXPECT_LE(c.center.lon, 180.0) << c.name;
    }
}

TEST(WorldData, BroadbandProfilesAreSane) {
    for (const auto& c : countries()) {
        EXPECT_GT(c.broadband.down_mbps_median, 0.5) << c.name;
        EXPECT_LT(c.broadband.down_mbps_median, 200.0) << c.name;
        EXPECT_GE(c.broadband.asymmetry, 1.0) << c.name;
    }
}

TEST(WorldData, FindCountryByAlpha2) {
    const CountryInfo* de = find_country("DE");
    ASSERT_NE(de, nullptr);
    EXPECT_EQ(de->name, "Germany");
    EXPECT_EQ(find_country("ZZ"), nullptr);
    // The US has multiple entries sharing the code; lookup returns one.
    const CountryInfo* us = find_country("US");
    ASSERT_NE(us, nullptr);
    EXPECT_EQ(us->alpha2, "US");
}

TEST(WorldData, UnitedStatesSplitAcrossRegions) {
    int us_entries = 0;
    std::set<std::uint16_t> us_regions;
    for (const auto& c : countries())
        if (c.alpha2 == "US") {
            ++us_entries;
            us_regions.insert(c.region.value);
        }
    EXPECT_EQ(us_entries, 3);  // East / Central / West, as Table 2 needs
    EXPECT_EQ(us_regions.size(), 3u);
}

}  // namespace
}  // namespace netsession::net
