#include <gtest/gtest.h>

#include "net/geo.hpp"
#include "net/ipv4.hpp"

namespace netsession::net {
namespace {

TEST(Haversine, ZeroDistance) {
    const GeoPoint p{48.85, 2.35};
    EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, KnownCityPairs) {
    const GeoPoint paris{48.8566, 2.3522};
    const GeoPoint london{51.5074, -0.1278};
    const GeoPoint new_york{40.7128, -74.0060};
    const GeoPoint sydney{-33.8688, 151.2093};
    EXPECT_NEAR(haversine_km(paris, london), 344, 10);
    EXPECT_NEAR(haversine_km(paris, new_york), 5837, 50);
    EXPECT_NEAR(haversine_km(london, sydney), 16994, 150);
}

TEST(Haversine, Symmetric) {
    const GeoPoint a{10, 20}, b{-30, 140};
    EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, AntipodalIsHalfCircumference) {
    const GeoPoint a{0, 0}, b{0, 180};
    EXPECT_NEAR(haversine_km(a, b), 6371 * 3.14159265, 5);
}

TEST(Ipv4, Formatting) {
    EXPECT_EQ((IpAddr{0x01020304}).to_string(), "1.2.3.4");
    EXPECT_EQ((IpAddr{0xFFFFFFFF}).to_string(), "255.255.255.255");
    EXPECT_EQ((IpAddr{0}).to_string(), "0.0.0.0");
}

TEST(Ipv4, PrefixContains) {
    const Prefix p{0x0A000000, 8};  // 10.0.0.0/8
    EXPECT_TRUE(p.contains(IpAddr{0x0A123456}));
    EXPECT_FALSE(p.contains(IpAddr{0x0B000001}));
    EXPECT_EQ(p.size(), 1u << 24);

    const Prefix host{0xC0A80101, 32};
    EXPECT_TRUE(host.contains(IpAddr{0xC0A80101}));
    EXPECT_FALSE(host.contains(IpAddr{0xC0A80102}));
    EXPECT_EQ(host.size(), 1u);

    const Prefix all{0, 0};
    EXPECT_TRUE(all.contains(IpAddr{0xDEADBEEF}));
}

}  // namespace
}  // namespace netsession::net
