// NAT traversal matrix: the properties peer selection relies on.
#include <gtest/gtest.h>

#include "net/nat.hpp"

namespace netsession::net {
namespace {

class NatPairTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NatPairTest, MatrixIsSymmetric) {
    const auto a = static_cast<NatType>(std::get<0>(GetParam()));
    const auto b = static_cast<NatType>(std::get<1>(GetParam()));
    EXPECT_DOUBLE_EQ(traversal_success_probability(a, b), traversal_success_probability(b, a));
    EXPECT_EQ(can_traverse(a, b), can_traverse(b, a));
}

TEST_P(NatPairTest, ProbabilitiesAreValidAndConsistent) {
    const auto a = static_cast<NatType>(std::get<0>(GetParam()));
    const auto b = static_cast<NatType>(std::get<1>(GetParam()));
    const double p = traversal_success_probability(a, b);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_EQ(can_traverse(a, b), p > 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, NatPairTest,
                         ::testing::Combine(::testing::Range(0, kNatTypeCount),
                                            ::testing::Range(0, kNatTypeCount)));

TEST(Nat, OpenReachesEverything) {
    for (int i = 0; i < kNatTypeCount; ++i)
        EXPECT_TRUE(can_traverse(NatType::open, static_cast<NatType>(i)))
            << to_string(static_cast<NatType>(i));
}

TEST(Nat, ClassicImpossiblePairs) {
    EXPECT_FALSE(can_traverse(NatType::symmetric, NatType::symmetric));
    EXPECT_FALSE(can_traverse(NatType::symmetric, NatType::port_restricted));
    EXPECT_FALSE(can_traverse(NatType::udp_blocked, NatType::udp_blocked));
    EXPECT_FALSE(can_traverse(NatType::udp_blocked, NatType::full_cone));
}

TEST(Nat, ConeTypesInterconnect) {
    EXPECT_TRUE(can_traverse(NatType::full_cone, NatType::full_cone));
    EXPECT_TRUE(can_traverse(NatType::full_cone, NatType::port_restricted));
    EXPECT_TRUE(can_traverse(NatType::restricted_cone, NatType::port_restricted));
}

TEST(Nat, MixSumsToOne) {
    const auto& mix = default_nat_mix();
    double sum = 0;
    for (const double v : mix) {
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Nat, NamesAreDistinct) {
    for (int i = 0; i < kNatTypeCount; ++i)
        for (int j = i + 1; j < kNatTypeCount; ++j)
            EXPECT_NE(to_string(static_cast<NatType>(i)), to_string(static_cast<NatType>(j)));
}

}  // namespace
}  // namespace netsession::net
