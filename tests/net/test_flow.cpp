// Flow-level bandwidth sharing: exactness on single-bottleneck cases,
// feasibility invariants on random topologies, rescheduling correctness.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "net/flow.hpp"

namespace netsession::net {
namespace {

struct Fixture {
    sim::Simulator sim;
    FlowNetwork net{sim};
};

TEST(FlowNetwork, SingleFlowUsesBottleneck) {
    Fixture f;
    const HostId a = f.net.add_host(/*up=*/1000.0, /*down=*/kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, 500.0);
    bool done = false;
    f.net.start_flow(a, b, 5000, kUnlimited, [&](FlowId) { done = true; });
    EXPECT_DOUBLE_EQ(f.net.current_rate(FlowId{}), 0.0);
    f.sim.run();
    EXPECT_TRUE(done);
    // 5000 bytes at 500 B/s (receiver-bound) = 10 s.
    EXPECT_NEAR(f.sim.now().seconds(), 10.0, 0.01);
}

TEST(FlowNetwork, PerFlowCapBinds) {
    Fixture f;
    const HostId a = f.net.add_host(kUnlimited, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, kUnlimited);
    bool done = false;
    f.net.start_flow(a, b, 1000, 100.0, [&](FlowId) { done = true; });
    f.sim.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(f.sim.now().seconds(), 10.0, 0.01);
}

TEST(FlowNetwork, EqualSharingOnSharedUplink) {
    Fixture f;
    const HostId src = f.net.add_host(1000.0, kUnlimited);
    const HostId d1 = f.net.add_host(kUnlimited, kUnlimited);
    const HostId d2 = f.net.add_host(kUnlimited, kUnlimited);
    int done = 0;
    f.net.start_flow(src, d1, 10000, kUnlimited, [&](FlowId) { ++done; });
    const FlowId f2 = f.net.start_flow(src, d2, 10000, kUnlimited, [&](FlowId) { ++done; });
    EXPECT_NEAR(f.net.current_rate(f2), 500.0, 1.0);
    f.sim.run();
    EXPECT_EQ(done, 2);
    // Both at 500 B/s -> 20 s.
    EXPECT_NEAR(f.sim.now().seconds(), 20.0, 0.05);
}

TEST(FlowNetwork, WaterFillingGivesSurplusToUnconstrainedFlow) {
    Fixture f;
    const HostId src = f.net.add_host(1000.0, kUnlimited);
    const HostId slow = f.net.add_host(kUnlimited, 200.0);  // receiver-limited
    const HostId fast = f.net.add_host(kUnlimited, kUnlimited);
    const FlowId to_slow = f.net.start_flow(src, slow, 1_MB, kUnlimited, nullptr);
    const FlowId to_fast = f.net.start_flow(src, fast, 1_MB, kUnlimited, nullptr);
    // Water-filling: slow flow pinned at 200, fast flow gets the remaining 800.
    EXPECT_NEAR(f.net.current_rate(to_slow), 200.0, 2.0);
    EXPECT_NEAR(f.net.current_rate(to_fast), 800.0, 8.0);
}

TEST(FlowNetwork, CompletionFreesCapacityForRemainingFlows) {
    Fixture f;
    const HostId src = f.net.add_host(1000.0, kUnlimited);
    const HostId d1 = f.net.add_host(kUnlimited, kUnlimited);
    const HostId d2 = f.net.add_host(kUnlimited, kUnlimited);
    sim::SimTime first{}, second{};
    f.net.start_flow(src, d1, 5000, kUnlimited, [&](FlowId) { first = f.sim.now(); });
    f.net.start_flow(src, d2, 10000, kUnlimited, [&](FlowId) { second = f.sim.now(); });
    f.sim.run();
    // Shared 500/500 until t=10 (first done), then 1000 for the remaining
    // 5000 bytes -> t=15.
    EXPECT_NEAR(first.seconds(), 10.0, 0.05);
    EXPECT_NEAR(second.seconds(), 15.0, 0.1);
}

TEST(FlowNetwork, CancelReturnsTransferredBytes) {
    Fixture f;
    const HostId a = f.net.add_host(100.0, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, kUnlimited);
    bool done = false;
    const FlowId id = f.net.start_flow(a, b, 10000, kUnlimited, [&](FlowId) { done = true; });
    f.sim.run_until(sim::SimTime{} + sim::seconds(10.0));
    const Bytes moved = f.net.cancel_flow(id);
    EXPECT_NEAR(static_cast<double>(moved), 1000.0, 10.0);
    f.sim.run();
    EXPECT_FALSE(done);
    EXPECT_FALSE(f.net.active(id));
    EXPECT_EQ(f.net.cancel_flow(id), 0) << "stale cancel is a no-op";
}

TEST(FlowNetwork, CapacityChangeReschedulesCompletion) {
    Fixture f;
    const HostId a = f.net.add_host(100.0, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, kUnlimited);
    sim::SimTime done_at{};
    f.net.start_flow(a, b, 2000, kUnlimited, [&](FlowId) { done_at = f.sim.now(); });
    f.sim.run_until(sim::SimTime{} + sim::seconds(10.0));  // 1000 bytes moved
    f.net.set_up_capacity(a, 500.0);                       // remaining 1000 at 500 B/s
    f.sim.run();
    EXPECT_NEAR(done_at.seconds(), 12.0, 0.05);
}

TEST(FlowNetwork, ThrottleToZeroStallsAndRecovers) {
    Fixture f;
    const HostId a = f.net.add_host(100.0, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, kUnlimited);
    bool done = false;
    f.net.start_flow(a, b, 1000, kUnlimited, [&](FlowId) { done = true; });
    f.sim.run_until(sim::SimTime{} + sim::seconds(5.0));
    f.net.set_up_capacity(a, 0.0);
    f.sim.run_until(sim::SimTime{} + sim::seconds(100.0));
    EXPECT_FALSE(done);  // stalled
    f.net.set_up_capacity(a, 100.0);
    f.sim.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(f.sim.now().seconds(), 105.0, 0.1);
}

TEST(FlowNetwork, LiftingCapacityToUnlimitedReleasesFlows) {
    Fixture f;
    const HostId a = f.net.add_host(100.0, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, kUnlimited);
    const FlowId id = f.net.start_flow(a, b, 1'000'000, 2000.0, nullptr);
    EXPECT_NEAR(f.net.current_rate(id), 100.0, 1.0);
    f.net.set_up_capacity(a, kUnlimited);
    EXPECT_NEAR(f.net.current_rate(id), 2000.0, 20.0) << "only the per-flow cap remains";
}

TEST(FlowNetwork, TotalDeliveredMatchesFlowSizes) {
    Fixture f;
    const HostId a = f.net.add_host(1000.0, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, 800.0);
    for (int i = 0; i < 10; ++i) f.net.start_flow(a, b, 12345, kUnlimited, nullptr);
    f.sim.run();
    EXPECT_NEAR(static_cast<double>(f.net.total_delivered()), 123450.0, 15.0);
}

TEST(FlowNetwork, TotalDeliveredConservedAcrossManySettlesAndCancels) {
    // Regression for rounding drift: total_delivered_ used to add
    // llround(moved) on every partial settle, so a flow settled N times could
    // drift from its size by up to N/2 bytes. It is now credited once per
    // flow, at completion or cancel, so completed sizes plus cancelled
    // partials must match the counter *exactly*.
    Fixture f;
    const HostId a = f.net.add_host(1000.0, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, 900.0);
    Bytes expected = 0;
    std::uint64_t cancels = 0;

    // Long-lived flows get settled on every rate perturbation below.
    std::vector<FlowId> longlived;
    for (int i = 0; i < 4; ++i)
        longlived.push_back(
            f.net.start_flow(a, b, 500'000, kUnlimited, [&](FlowId) { expected += 500'000; }));

    // A second receiver whose flow set stays stable: churn on `b` dirties it
    // (shared sender `a`) but never changes its membership, so its refills
    // exercise the sort-cache hit path.
    const HostId c = f.net.add_host(kUnlimited, 800.0);
    for (int i = 0; i < 2; ++i)
        f.net.start_flow(a, c, 400'000, kUnlimited, [&](FlowId) { expected += 400'000; });

    // Churn: short flows join and leave the shared bottleneck; every join,
    // cancel, and completion re-allocates (and settles) every adjacent flow.
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const Bytes size = rng.range(100, 2000);
        const FlowId id = f.net.start_flow(a, b, size, kUnlimited,
                                           [&, size](FlowId) { expected += size; });
        f.sim.run_until(f.sim.now() + sim::milliseconds(rng.uniform(50.0, 500.0)));
        if (rng.chance(0.3) && f.net.active(id)) {
            expected += f.net.cancel_flow(id);
            ++cancels;
        }
    }
    expected += f.net.cancel_flow(longlived[0]);
    expected += f.net.cancel_flow(longlived[1]);
    cancels += 2;
    f.sim.run();

    EXPECT_EQ(f.net.total_delivered(), expected);
    EXPECT_EQ(f.net.stats().flows_started, 206u);
    EXPECT_EQ(f.net.stats().flows_cancelled, cancels);
    EXPECT_EQ(f.net.stats().flows_completed, 206u - cancels);
    // The refill sort-cache must actually engage under churn on a stable set.
    EXPECT_GT(f.net.stats().resort_hits, 0u);
}

TEST(FlowNetwork, TransferredSettlesMidFlight) {
    Fixture f;
    const HostId a = f.net.add_host(100.0, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, kUnlimited);
    const FlowId id = f.net.start_flow(a, b, 10000, kUnlimited, nullptr);
    f.sim.run_until(sim::SimTime{} + sim::seconds(25.0));
    EXPECT_NEAR(static_cast<double>(f.net.transferred(id)), 2500.0, 25.0);
}

TEST(FlowNetwork, UnlimitedEdgeDoesNotCoupleItsClients) {
    Fixture f;
    const HostId edge = f.net.add_host(kUnlimited, kUnlimited);
    const HostId c1 = f.net.add_host(kUnlimited, 100.0);
    const HostId c2 = f.net.add_host(kUnlimited, 400.0);
    const FlowId f1 = f.net.start_flow(edge, c1, 1_MB, kUnlimited, nullptr);
    const FlowId f2 = f.net.start_flow(edge, c2, 1_MB, kUnlimited, nullptr);
    EXPECT_NEAR(f.net.current_rate(f1), 100.0, 1.0);
    EXPECT_NEAR(f.net.current_rate(f2), 400.0, 4.0);
}

TEST(FlowNetwork, CompletionCallbackMayStartNewFlow) {
    Fixture f;
    const HostId a = f.net.add_host(100.0, kUnlimited);
    const HostId b = f.net.add_host(kUnlimited, kUnlimited);
    int completions = 0;
    std::function<void(FlowId)> chain = [&](FlowId) {
        if (++completions < 3) f.net.start_flow(a, b, 100, kUnlimited, chain);
    };
    f.net.start_flow(a, b, 100, kUnlimited, chain);
    f.sim.run();
    EXPECT_EQ(completions, 3);
    EXPECT_NEAR(f.sim.now().seconds(), 3.0, 0.05);
}

// --- property suite over random topologies -----------------------------------------

class FlowPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowPropertyTest, CapacityFeasibilityAndConservation) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    sim::Simulator sim;
    FlowNetwork net(sim);

    const int hosts = 20;
    std::vector<HostId> ids;
    std::vector<double> up(hosts), down(hosts);
    for (int i = 0; i < hosts; ++i) {
        up[static_cast<std::size_t>(i)] = rng.uniform(50.0, 2000.0);
        down[static_cast<std::size_t>(i)] = rng.uniform(50.0, 2000.0);
        ids.push_back(net.add_host(up[static_cast<std::size_t>(i)], down[static_cast<std::size_t>(i)]));
    }

    struct Live {
        FlowId id;
        int src, dst;
        Bytes size;
    };
    std::vector<Live> live;
    Bytes expected_total = 0;
    int completed = 0;
    for (int i = 0; i < 60; ++i) {
        const int s = static_cast<int>(rng.below(hosts));
        int d = static_cast<int>(rng.below(hosts));
        if (d == s) d = (d + 1) % hosts;
        const Bytes size = rng.range(1000, 100000);
        expected_total += size;
        const double cap = rng.chance(0.3) ? rng.uniform(20.0, 500.0) : kUnlimited;
        const FlowId id = net.start_flow(ids[static_cast<std::size_t>(s)],
                                         ids[static_cast<std::size_t>(d)], size, cap,
                                         [&](FlowId) { ++completed; });
        live.push_back(Live{id, s, d, size});

        // Invariant: per-host aggregate rates never exceed capacities
        // (within the reallocation epsilon).
        std::vector<double> out_rate(hosts, 0.0), in_rate(hosts, 0.0);
        for (const auto& fl : live) {
            if (!net.active(fl.id)) continue;
            const double r = net.current_rate(fl.id);
            ASSERT_GE(r, 0.0);
            out_rate[static_cast<std::size_t>(fl.src)] += r;
            in_rate[static_cast<std::size_t>(fl.dst)] += r;
        }
        for (int h = 0; h < hosts; ++h) {
            EXPECT_LE(out_rate[static_cast<std::size_t>(h)],
                      up[static_cast<std::size_t>(h)] * 1.08 + 1.0);
            EXPECT_LE(in_rate[static_cast<std::size_t>(h)],
                      down[static_cast<std::size_t>(h)] * 1.08 + 1.0);
        }
    }
    sim.run();
    EXPECT_EQ(completed, 60);
    // Byte conservation: everything started was delivered.
    EXPECT_NEAR(static_cast<double>(net.total_delivered()),
                static_cast<double>(expected_total),
                static_cast<double>(expected_total) * 0.001 + 100.0);
}

TEST_P(FlowPropertyTest, NoStarvationWithPositiveCapacities) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
    sim::Simulator sim;
    FlowNetwork net(sim);
    const HostId hub = net.add_host(rng.uniform(100.0, 1000.0), rng.uniform(100.0, 1000.0));
    int completed = 0;
    int flows = 0;
    for (int i = 0; i < 15; ++i) {
        const HostId other = net.add_host(rng.uniform(50.0, 500.0), rng.uniform(50.0, 500.0));
        if (rng.chance(0.5)) {
            net.start_flow(hub, other, rng.range(500, 20000), kUnlimited,
                           [&](FlowId) { ++completed; });
        } else {
            net.start_flow(other, hub, rng.range(500, 20000), kUnlimited,
                           [&](FlowId) { ++completed; });
        }
        ++flows;
    }
    sim.run();
    EXPECT_EQ(completed, flows) << "every flow finishes when all capacities are positive";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowPropertyTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace netsession::net
