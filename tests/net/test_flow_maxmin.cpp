// Flow allocation vs an exact global max-min reference.
//
// The FlowNetwork uses per-host water-filling (DESIGN.md §4.1), which is
// exact on single-bottleneck topologies and a close approximation elsewhere.
// This suite computes the exact max-min allocation by global progressive
// filling and compares.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "net/flow.hpp"

namespace netsession::net {
namespace {

struct FlowSpec {
    int src, dst;
    double cap;
};

/// Exact max-min fair rates by progressive filling: raise all unfrozen flow
/// rates together; freeze flows at saturated constraints (host links and
/// per-flow caps).
std::vector<double> exact_max_min(const std::vector<double>& up, const std::vector<double>& down,
                                  const std::vector<FlowSpec>& flows) {
    const std::size_t n = flows.size();
    std::vector<double> rate(n, 0.0);
    std::vector<bool> frozen(n, false);
    std::vector<double> up_left = up, down_left = down;

    for (std::size_t round = 0; round < n + 1; ++round) {
        // Count unfrozen flows per link.
        std::vector<int> up_count(up.size(), 0), down_count(down.size(), 0);
        int unfrozen = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i]) continue;
            ++unfrozen;
            ++up_count[static_cast<std::size_t>(flows[i].src)];
            ++down_count[static_cast<std::size_t>(flows[i].dst)];
        }
        if (unfrozen == 0) break;
        // The smallest feasible uniform increment.
        double delta = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i]) continue;
            if (flows[i].cap != kUnlimited) delta = std::min(delta, flows[i].cap - rate[i]);
        }
        for (std::size_t h = 0; h < up.size(); ++h)
            if (up_count[h] > 0 && up[h] != kUnlimited)
                delta = std::min(delta, up_left[h] / up_count[h]);
        for (std::size_t h = 0; h < down.size(); ++h)
            if (down_count[h] > 0 && down[h] != kUnlimited)
                delta = std::min(delta, down_left[h] / down_count[h]);
        if (!std::isfinite(delta)) {
            // Remaining unfrozen flows have no finite constraint at all.
            for (std::size_t i = 0; i < n; ++i)
                if (!frozen[i]) rate[i] = std::numeric_limits<double>::infinity();
            break;
        }

        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i]) continue;
            rate[i] += delta;
            if (up[static_cast<std::size_t>(flows[i].src)] != kUnlimited)
                up_left[static_cast<std::size_t>(flows[i].src)] -= delta;
            if (down[static_cast<std::size_t>(flows[i].dst)] != kUnlimited)
                down_left[static_cast<std::size_t>(flows[i].dst)] -= delta;
        }
        // Freeze saturated flows.
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i]) continue;
            const bool cap_hit = flows[i].cap != kUnlimited && rate[i] >= flows[i].cap - 1e-9;
            const bool up_hit = up[static_cast<std::size_t>(flows[i].src)] != kUnlimited &&
                                up_left[static_cast<std::size_t>(flows[i].src)] <= 1e-9;
            const bool down_hit = down[static_cast<std::size_t>(flows[i].dst)] != kUnlimited &&
                                  down_left[static_cast<std::size_t>(flows[i].dst)] <= 1e-9;
            if (cap_hit || up_hit || down_hit) frozen[i] = true;
        }
    }
    return rate;
}

struct Built {
    sim::Simulator sim;
    FlowNetwork net{sim};
    std::vector<HostId> hosts;
    std::vector<FlowId> ids;
};

void build(Built& b, const std::vector<double>& up, const std::vector<double>& down,
           const std::vector<FlowSpec>& flows) {
    for (std::size_t h = 0; h < up.size(); ++h) b.hosts.push_back(b.net.add_host(up[h], down[h]));
    for (const auto& f : flows)
        b.ids.push_back(b.net.start_flow(b.hosts[static_cast<std::size_t>(f.src)],
                                         b.hosts[static_cast<std::size_t>(f.dst)], 1_GB, f.cap,
                                         nullptr));
}

TEST(FlowMaxMin, ExactOnSingleSharedUplink) {
    const std::vector<double> up = {900.0, kUnlimited, kUnlimited, kUnlimited};
    const std::vector<double> down = {kUnlimited, 100.0, kUnlimited, kUnlimited};
    const std::vector<FlowSpec> flows = {{0, 1, kUnlimited}, {0, 2, kUnlimited}, {0, 3, 50.0}};
    const auto exact = exact_max_min(up, down, flows);

    Built b;
    build(b, up, down, flows);
    for (std::size_t i = 0; i < flows.size(); ++i)
        EXPECT_NEAR(b.net.current_rate(b.ids[i]), exact[i], exact[i] * 0.02 + 1.0) << "flow " << i;
    // Reference sanity: slow receiver 100, capped flow 50, rest 750.
    EXPECT_NEAR(exact[0], 100.0, 1e-6);
    EXPECT_NEAR(exact[1], 750.0, 1e-6);
    EXPECT_NEAR(exact[2], 50.0, 1e-6);
}

TEST(FlowMaxMin, ExactOnSymmetricCross) {
    // Two senders, two receivers, full bipartite flows.
    const std::vector<double> up = {400.0, 400.0, kUnlimited, kUnlimited};
    const std::vector<double> down = {kUnlimited, kUnlimited, 400.0, 400.0};
    const std::vector<FlowSpec> flows = {{0, 2, kUnlimited},
                                         {0, 3, kUnlimited},
                                         {1, 2, kUnlimited},
                                         {1, 3, kUnlimited}};
    const auto exact = exact_max_min(up, down, flows);
    Built b;
    build(b, up, down, flows);
    for (std::size_t i = 0; i < flows.size(); ++i) {
        EXPECT_NEAR(exact[i], 200.0, 1e-6);
        EXPECT_NEAR(b.net.current_rate(b.ids[i]), 200.0, 5.0);
    }
}

class MaxMinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinPropertyTest, LocalWaterfillTracksGlobalMaxMin) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    const int hosts = 8;
    std::vector<double> up, down;
    for (int h = 0; h < hosts; ++h) {
        up.push_back(rng.chance(0.2) ? kUnlimited : rng.uniform(100.0, 1000.0));
        down.push_back(rng.chance(0.2) ? kUnlimited : rng.uniform(100.0, 1000.0));
    }
    std::vector<FlowSpec> flows;
    for (int i = 0; i < 12; ++i) {
        const int s = static_cast<int>(rng.below(hosts));
        int d = static_cast<int>(rng.below(hosts));
        if (d == s) d = (d + 1) % hosts;
        flows.push_back({s, d, rng.chance(0.3) ? rng.uniform(30.0, 300.0) : kUnlimited});
    }
    const auto exact = exact_max_min(up, down, flows);
    Built b;
    build(b, up, down, flows);

    // The local approximation must (a) stay feasible — checked by the flow
    // tests already — and (b) achieve at least ~60% of the exact max-min
    // aggregate throughput and per-flow rates within a generous band.
    double exact_total = 0, got_total = 0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
        if (!std::isfinite(exact[i])) continue;  // unconstrained flow
        exact_total += exact[i];
        got_total += std::min(b.net.current_rate(b.ids[i]), exact[i] * 3.0);
        EXPECT_LE(b.net.current_rate(b.ids[i]), exact[i] * 2.0 + 50.0)
            << "no flow grossly exceeds its fair share";
    }
    if (exact_total > 0) {
        EXPECT_GE(got_total, 0.6 * exact_total) << "aggregate throughput near max-min";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinPropertyTest, ::testing::Range(1, 15));

}  // namespace
}  // namespace netsession::net
