// World: host attachment, geo registration, latency model, message delivery.
#include <gtest/gtest.h>

#include "net/world.hpp"

namespace netsession::net {
namespace {

World make_world(sim::Simulator& sim) {
    AsGraphConfig config;
    config.total_ases = 200;
    return World(sim, AsGraph::generate(config, Rng(3)));
}

HostInfo host_in(World& w, std::string_view alpha2, Rng& rng) {
    const CountryInfo* c = find_country(alpha2);
    HostInfo info;
    info.attach.location = Location{c->id, 0, c->center};
    info.attach.asn = w.as_graph().pick_for_country(c->id, rng);
    info.up = mbps(2.0);
    info.down = mbps(16.0);
    return info;
}

TEST(World, CreateHostAllocatesAndRegistersIp) {
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(1);
    const HostId h = w.create_host(host_in(w, "DE", rng));
    const auto& info = w.host(h);
    EXPECT_NE(info.attach.ip.value, 0u);
    const auto geo = w.geodb().lookup(info.attach.ip);
    ASSERT_TRUE(geo.has_value());
    EXPECT_EQ(geo->asn, info.attach.asn);
    EXPECT_EQ(geo->location.country, info.attach.location.country);
}

TEST(World, ReattachAllocatesFreshIpAndRegistersIt) {
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(2);
    const HostId h = w.create_host(host_in(w, "DE", rng));
    const IpAddr old_ip = w.host(h).attach.ip;

    const CountryInfo* fr = find_country("FR");
    const Asn new_asn = w.as_graph().pick_for_country(fr->id, rng);
    w.reattach(h, Location{fr->id, 0, fr->center}, new_asn, NatType::symmetric);

    const auto& info = w.host(h);
    EXPECT_NE(info.attach.ip, old_ip);
    EXPECT_EQ(info.attach.asn, new_asn);
    EXPECT_EQ(info.attach.nat, NatType::symmetric);
    // Both addresses stay resolvable (the geo database is historical).
    EXPECT_TRUE(w.geodb().lookup(old_ip).has_value());
    EXPECT_TRUE(w.geodb().lookup(info.attach.ip).has_value());
}

TEST(World, LatencyGrowsWithDistance) {
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(3);
    const HostId de = w.create_host(host_in(w, "DE", rng));
    const HostId fr = w.create_host(host_in(w, "FR", rng));
    const HostId au = w.create_host(host_in(w, "AU", rng));
    EXPECT_LT(w.latency(de, fr).us, w.latency(de, au).us);
    EXPECT_GT(w.latency(de, fr).us, 0);
}

TEST(World, LatencyIsSymmetric) {
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(4);
    const HostId a = w.create_host(host_in(w, "BR", rng));
    const HostId b = w.create_host(host_in(w, "JP", rng));
    EXPECT_EQ(w.latency(a, b).us, w.latency(b, a).us);
}

TEST(World, SameAsIsFasterThanCrossAs) {
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(5);
    HostInfo a = host_in(w, "DE", rng);
    HostInfo b = a;  // identical location
    b.attach.asn = a.attach.asn;
    HostInfo c = a;
    // Find a different AS in the same country.
    while (c.attach.asn == a.attach.asn)
        c.attach.asn = w.as_graph().pick_for_country(a.attach.location.country, rng);
    const HostId ha = w.create_host(a);
    const HostId hb = w.create_host(b);
    const HostId hc = w.create_host(c);
    EXPECT_LT(w.latency(ha, hb).us, w.latency(ha, hc).us);
}

TEST(World, OverlappingAsDegradationsRestoreExactPreFaultState) {
    // Two degradation layers on the same AS — the shape a chaos campaign
    // produces — must compose while both are live and, once both are
    // removed (in either order), leave latency and capacities bit-identical
    // to the pre-fault values. Recompute-from-layers, never divide-back-out.
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(7);
    const HostInfo a_info = host_in(w, "DE", rng);
    const HostId a = w.create_host(a_info);
    const HostId b = w.create_host(host_in(w, "FR", rng));
    const Asn asn = a_info.attach.asn;

    const std::int64_t base_latency = w.latency(a, b).us;
    const Rate base_up = w.flows().up_capacity(a);
    const Rate base_down = w.flows().down_capacity(a);

    for (const bool reverse_order : {false, true}) {
        const std::uint32_t first = w.degrade_as(asn, 5.0, 0.2, 0.0);
        const std::uint32_t second = w.degrade_as(asn, 3.0, 0.5, 0.01);
        EXPECT_EQ(w.active_as_degradations(), 2);
        EXPECT_GT(w.latency(a, b).us, base_latency) << "factors must compose, not replace";
        EXPECT_LT(w.flows().up_capacity(a), base_up);

        w.restore_as(asn, reverse_order ? second : first);
        EXPECT_EQ(w.active_as_degradations(), 1);
        EXPECT_GT(w.latency(a, b).us, base_latency) << "one layer is still live";

        w.restore_as(asn, reverse_order ? first : second);
        EXPECT_EQ(w.active_as_degradations(), 0);
        EXPECT_EQ(w.latency(a, b).us, base_latency);
        EXPECT_EQ(w.flows().up_capacity(a), base_up);
        EXPECT_EQ(w.flows().down_capacity(a), base_down);
    }
}

TEST(World, RestoreAllLayersAtOnceIsExactToo) {
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(8);
    const HostInfo a_info = host_in(w, "US", rng);
    const HostId a = w.create_host(a_info);
    const HostId b = w.create_host(host_in(w, "JP", rng));
    const std::int64_t base_latency = w.latency(a, b).us;
    const Rate base_up = w.flows().up_capacity(a);

    (void)w.degrade_as(a_info.attach.asn, 2.0, 0.5, 0.02);
    (void)w.degrade_as(a_info.attach.asn, 4.0, 0.25, 0.0);
    w.restore_as(a_info.attach.asn);  // blanket restore
    EXPECT_EQ(w.active_as_degradations(), 0);
    EXPECT_EQ(w.latency(a, b).us, base_latency);
    EXPECT_EQ(w.flows().up_capacity(a), base_up);
}

TEST(World, NestedPartitionsHealBackToFullReachability) {
    // A campaign can partition region A<->B while A is also cut off from
    // everyone (region=all). Cuts nest by count: healing one leaves the
    // other in force; healing both — in either order — restores exact
    // pre-fault reachability and message delivery.
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(9);
    const HostId de = w.create_host(host_in(w, "DE", rng));  // EU region
    const HostId us = w.create_host(host_in(w, "US", rng));
    const int eu = static_cast<int>(w.region_of(de).value);
    const int na = static_cast<int>(w.region_of(us).value);
    ASSERT_NE(eu, na);
    ASSERT_TRUE(w.reachable(de, us));

    for (const bool reverse_order : {false, true}) {
        w.partition_regions(eu, na);  // targeted cut
        w.partition_regions(eu, -1);  // nested: EU vs the world
        EXPECT_FALSE(w.reachable(de, us));

        if (reverse_order)
            w.heal_partition(eu, na);
        else
            w.heal_partition(eu, -1);
        EXPECT_FALSE(w.reachable(de, us)) << "the other cut is still in force";

        if (reverse_order)
            w.heal_partition(eu, -1);
        else
            w.heal_partition(eu, na);
        EXPECT_TRUE(w.reachable(de, us));

        bool delivered = false;
        w.send(de, us, [&] { delivered = true; });
        sim.run();
        EXPECT_TRUE(delivered) << "messages must flow again after full heal";
    }
}

TEST(World, SendDeliversAfterLatency) {
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(6);
    const HostId a = w.create_host(host_in(w, "US", rng));
    const HostId b = w.create_host(host_in(w, "JP", rng));
    sim::SimTime delivered{};
    w.send(a, b, [&] { delivered = sim.now(); });
    sim.run();
    EXPECT_EQ(delivered.us, w.latency(a, b).us);
}

TEST(World, HostShardIsRegionModuloShards) {
    sim::Simulator sim;
    sim.configure_shards(4, kLatencyFloor);
    World w = make_world(sim);
    w.configure_shards(4);
    Rng rng(1);
    for (const char* alpha2 : {"DE", "US", "IN", "CN", "BR", "AU"}) {
        const HostId h = w.create_host(host_in(w, alpha2, rng));
        const int want = static_cast<int>(w.region_of(h).value) % 4;
        EXPECT_EQ(w.host_shard(h), want) << alpha2;
        EXPECT_EQ(w.flows().host_shard(h), static_cast<std::uint32_t>(want)) << alpha2;
    }
}

TEST(World, ReattachDoesNotRehomeTheHost) {
    // A host's lane is part of its identity: mobility must not tear pending
    // lane-local timers away from their shard.
    sim::Simulator sim;
    sim.configure_shards(8, kLatencyFloor);
    World w = make_world(sim);
    w.configure_shards(8);
    Rng rng(7);
    const HostId h = w.create_host(host_in(w, "DE", rng));
    const int original = w.host_shard(h);
    const CountryInfo* au = find_country("AU");
    w.reattach(h, Location{au->id, 0, au->center},
               w.as_graph().pick_for_country(au->id, rng), NatType::open);
    EXPECT_EQ(w.host_shard(h), original);
}

TEST(World, ShardLossStreamDerivationIsStable) {
    // The per-lane loss streams are pure functions of (constant seed, lane
    // index): re-deriving them gives the same draws, different lanes give
    // different draws, and the derivation is independent of construction
    // order. This is what makes sharded fault runs replayable.
    const auto derive = [](int lane) {
        Rng base{0xFA017FA017FA017ULL};
        return base.child("loss-shard-" + std::to_string(lane));
    };
    for (int lane = 0; lane < 8; ++lane) {
        Rng a = derive(lane);
        Rng b = derive(lane);
        for (int i = 0; i < 64; ++i) ASSERT_EQ(a.next(), b.next()) << "lane " << lane;
    }
    Rng lane0 = derive(0);
    Rng lane1 = derive(1);
    bool diverged = false;
    for (int i = 0; i < 16 && !diverged; ++i) diverged = lane0.next() != lane1.next();
    EXPECT_TRUE(diverged) << "lanes must not share a stream";
}

TEST(World, LatencyNeverUndercutsTheLookaheadFloor) {
    // The sharded window width is derived from kLatencyFloor; if any host
    // pair could beat it, cross-shard messages would need clamping and the
    // engine's cross_clamped gauge would light up. Pin the floor, including
    // for co-located hosts in one AS.
    sim::Simulator sim;
    World w = make_world(sim);
    Rng rng(5);
    std::vector<HostId> hosts;
    for (const char* alpha2 : {"DE", "DE", "US", "JP", "BR", "ZA", "AU", "IN"})
        hosts.push_back(w.create_host(host_in(w, alpha2, rng)));
    // Two hosts at the exact same point in the same AS: the floor case.
    HostInfo clone = w.host(hosts[0]);
    clone.attach.ip = IpAddr{};
    hosts.push_back(w.create_host(clone));
    for (const HostId a : hosts)
        for (const HostId b : hosts)
            EXPECT_GE(w.latency(a, b).us, kLatencyFloor.us);
}

}  // namespace
}  // namespace netsession::net
