// Synthetic AS topology: structure, heavy tail, sampling, IP allocation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/as_graph.hpp"

namespace netsession::net {
namespace {

AsGraph make(int total = 300, std::uint64_t seed = 1) {
    AsGraphConfig config;
    config.total_ases = total;
    return AsGraph::generate(config, Rng(seed));
}

TEST(AsGraph, GeneratesRequestedCount) {
    const auto g = make(300);
    EXPECT_EQ(g.size(), 300u);
}

TEST(AsGraph, EveryCountryHasAnAs) {
    const auto g = make(200);
    std::set<std::uint16_t> covered;
    for (const auto& as : g.all()) covered.insert(as.country.value);
    EXPECT_EQ(covered.size(), countries().size());
}

TEST(AsGraph, RejectsTooFewAses) {
    AsGraphConfig config;
    config.total_ases = 3;
    EXPECT_THROW(AsGraph::generate(config, Rng(1)), std::invalid_argument);
}

TEST(AsGraph, Tier1Clique) {
    const auto g = make(300);
    std::vector<Asn> tier1;
    for (const auto& as : g.all())
        if (as.tier == 1) tier1.push_back(as.asn);
    EXPECT_EQ(tier1.size(), 10u);
    for (const auto a : tier1)
        for (const auto b : tier1) EXPECT_TRUE(g.directly_connected(a, b));
}

TEST(AsGraph, SelfIsConnected) {
    const auto g = make(200);
    const Asn a = g.all().front().asn;
    EXPECT_TRUE(g.directly_connected(a, a));
}

TEST(AsGraph, EveryAsHasAtLeastOneLink) {
    const auto g = make(300);
    for (const auto& as : g.all()) {
        bool linked = false;
        for (const auto& other : g.all()) {
            if (other.asn == as.asn) continue;
            if (g.directly_connected(as.asn, other.asn)) {
                linked = true;
                break;
            }
        }
        EXPECT_TRUE(linked) << "AS " << as.asn.value << " is isolated";
    }
}

TEST(AsGraph, SizeWeightsAreHeavyTailed) {
    const auto g = make(600);
    std::vector<double> weights;
    for (const auto& as : g.all()) weights.push_back(as.size_weight);
    std::sort(weights.begin(), weights.end(), std::greater<>());
    double total = 0;
    for (const double w : weights) total += w;
    double top_decile = 0;
    for (std::size_t i = 0; i < weights.size() / 10; ++i) top_decile += weights[i];
    // A Pareto(1.08) population concentrates most mass in the top decile.
    EXPECT_GT(top_decile / total, 0.4);
}

TEST(AsGraph, PickForCountryRespectsCountry) {
    auto g = make(300);
    Rng rng(7);
    for (const auto& c : countries()) {
        for (int i = 0; i < 5; ++i) {
            const Asn asn = g.pick_for_country(c.id, rng);
            EXPECT_EQ(g.info(asn).country, c.id);
        }
    }
}

TEST(AsGraph, PickForCountryPrefersLargeAses) {
    auto g = make(600);
    Rng rng(11);
    const CountryInfo* de = find_country("DE");
    ASSERT_NE(de, nullptr);
    std::map<std::uint32_t, int> hits;
    for (int i = 0; i < 3000; ++i) ++hits[g.pick_for_country(de->id, rng).value];
    // The most-hit AS should be the largest one of the country.
    const AsInfo* largest = nullptr;
    for (const auto& as : g.all())
        if (as.country == de->id && (largest == nullptr || as.size_weight > largest->size_weight))
            largest = &as;
    ASSERT_NE(largest, nullptr);
    const auto most_hit =
        std::max_element(hits.begin(), hits.end(),
                         [](const auto& a, const auto& b) { return a.second < b.second; });
    EXPECT_EQ(most_hit->first, largest->asn.value);
}

TEST(AsGraph, AllocatedIpsAreUniqueAndInPrefix) {
    auto g = make(200);
    const Asn asn = g.all().front().asn;
    const Prefix prefix = g.info(asn).prefix;
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const IpAddr ip = g.allocate_ip(asn);
        EXPECT_TRUE(prefix.contains(ip));
        EXPECT_TRUE(seen.insert(ip.value).second) << "duplicate IP";
    }
}

TEST(AsGraph, PrefixesAreDisjoint) {
    const auto g = make(300);
    std::set<std::uint32_t> bases;
    for (const auto& as : g.all()) {
        EXPECT_TRUE(bases.insert(as.prefix.base).second);
        EXPECT_EQ(as.prefix.length, 12);
    }
}

TEST(AsGraph, DeterministicBySeed) {
    const auto a = make(200, 5);
    const auto b = make(200, 5);
    const auto c = make(200, 6);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.edge_count(), b.edge_count());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a.all()[i].size_weight, b.all()[i].size_weight);
    EXPECT_NE(a.edge_count(), c.edge_count());
}

}  // namespace
}  // namespace netsession::net
