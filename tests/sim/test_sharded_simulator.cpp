// The sharded engine's ordering contract, pinned (docs/PARALLELISM.md "The
// sharded simulation core"):
//
//   - within a lane: (timestamp, lane-local seq) — FIFO on ties; slot indices
//     never participate (slots are recycled storage);
//   - across lanes, within a window: ascending shard id (lane-major), so at
//     equal timestamps the order is (timestamp, shard, seq);
//   - cross-shard sends: parked in the sender lane's outbox, merged at the
//     window barrier in (source shard, send order), inert handle;
//   - timestamps below the conservative window end are clamped to the barrier
//     and counted, never silently reordered into the closed window.
//
// The property-based half generates randomized event programs — cross-shard
// sends, cancels, same-timestamp ties — and checks the sharded scheduler
// against the single-queue engine as reference: the per-entity execution
// history (which ops ran, at what time, in what order) must be identical for
// every shard count, and any fixed configuration must replay identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace netsession::sim {
namespace {

SimTime at_us(std::int64_t us) { return SimTime{us}; }

constexpr Duration kLookahead = milliseconds(1.0);  // 1000 us, like net::kLatencyFloor

// --- tie-breaking ------------------------------------------------------------------------

TEST(ShardedSim, SingleQueueTiesAreFifo) {
    Simulator sim;
    std::vector<int> log;
    for (int i = 0; i < 8; ++i) sim.schedule_at(at_us(50), [&log, i] { log.push_back(i); });
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ShardedSim, SameTimestampOrderIsIndependentOfSlotReuse) {
    // Cancelled events release their slab slots (lazily, when the stale heap
    // entry purges); later same-timestamp events reuse them. If the
    // comparator ever fell back on slot indices, dispatch order would depend
    // on allocation history. Pin that it does not.
    Simulator sim;
    std::vector<int> log;
    const auto a = sim.schedule_at(at_us(10), [&log] { log.push_back(-1); });
    const auto b = sim.schedule_at(at_us(10), [&log] { log.push_back(-2); });
    ASSERT_TRUE(sim.cancel(a));
    ASSERT_TRUE(sim.cancel(b));
    const auto e1 = sim.schedule_at(at_us(100), [&log] { log.push_back(1); });
    const auto e2 = sim.schedule_at(at_us(100), [&log] { log.push_back(2); });
    // Drain past the cancelled events: their (low) slots recycle.
    sim.run_until(at_us(20));
    const auto e3 = sim.schedule_at(at_us(100), [&log] { log.push_back(3); });
    const auto e4 = sim.schedule_at(at_us(100), [&log] { log.push_back(4); });
    // The late events really do occupy the cancelled events' lower slots —
    // the interesting case: storage order disagrees with schedule order.
    EXPECT_TRUE((e3.slot() == a.slot() || e3.slot() == b.slot()));
    EXPECT_TRUE((e4.slot() == a.slot() || e4.slot() == b.slot()));
    EXPECT_LT(e3.slot(), e1.slot());
    EXPECT_LT(e4.slot(), e2.slot());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ShardedSim, EqualTimestampsRunByShardThenSeq) {
    Simulator sim;
    sim.configure_shards(4, kLookahead);
    std::vector<std::pair<int, int>> log;  // (shard, op)
    // Scheduled in deliberately scrambled lane order; two ops per lane.
    for (const int lane : {2, 0, 3, 1})
        for (int op = 0; op < 2; ++op)
            sim.schedule_in_shard(lane, at_us(500), [&log, &sim, op] {
                log.push_back({sim.current_shard(), op});
            });
    sim.run();
    const std::vector<std::pair<int, int>> want = {{0, 0}, {0, 1}, {1, 0}, {1, 1},
                                                   {2, 0}, {2, 1}, {3, 0}, {3, 1}};
    EXPECT_EQ(log, want);
}

TEST(ShardedSim, WindowsAreLaneMajorByDesign) {
    // Distinct timestamps inside ONE window still execute lane-major: lane
    // 0's later event runs before lane 1's earlier one. This is the
    // documented window-batched contract, not a bug — pin it so a change is
    // a conscious decision.
    Simulator sim;
    sim.configure_shards(2, kLookahead);
    std::vector<int> log;
    sim.schedule_in_shard(1, at_us(10), [&log] { log.push_back(10); });
    sim.schedule_in_shard(0, at_us(20), [&log] { log.push_back(20); });
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{20, 10}));
    EXPECT_EQ(sim.shard_stats().windows, 1u) << "both events fit one 1 ms window";
}

// --- lanes, inheritance, cancellation ----------------------------------------------------

TEST(ShardedSim, ScheduleAfterInheritsTheDispatchingLane) {
    Simulator sim;
    sim.configure_shards(4, kLookahead);
    std::vector<int> lanes;
    sim.schedule_in_shard(2, at_us(0), [&] {
        sim.schedule_after(milliseconds(5.0), [&] { lanes.push_back(sim.current_shard()); });
    });
    sim.schedule_in_shard(3, at_us(0), [&] {
        sim.schedule_at(sim.now() + milliseconds(7.0),
                        [&] { lanes.push_back(sim.current_shard()); });
    });
    sim.run();
    EXPECT_EQ(lanes, (std::vector<int>{2, 3}));
}

TEST(ShardedSim, SetupHandlesCancelAcrossLanes) {
    Simulator sim;
    sim.configure_shards(4, kLookahead);
    bool ran = false;
    const auto h = sim.schedule_in_shard(3, at_us(100), [&ran] { ran = true; });
    EXPECT_TRUE(h.valid());
    EXPECT_EQ(h.shard(), 3u);
    EXPECT_TRUE(sim.cancel(h));
    EXPECT_FALSE(sim.cancel(h)) << "double-cancel is a no-op";
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.stats().cancelled, 1u);
}

// --- cross-shard sends -------------------------------------------------------------------

TEST(ShardedSim, CrossShardSendRunsInDestinationLane) {
    Simulator sim;
    sim.configure_shards(2, kLookahead);
    std::int64_t ran_at = -1;
    int ran_in = -1;
    sim.schedule_in_shard(0, at_us(0), [&] {
        // 2 ms ≥ the 1 ms lookahead: next window, no clamping.
        const auto h = sim.schedule_in_shard(1, sim.now() + milliseconds(2.0), [&] {
            ran_at = sim.now().us;
            ran_in = sim.current_shard();
        });
        EXPECT_FALSE(h.valid()) << "outbox-routed sends are not cancellable";
    });
    sim.run();
    EXPECT_EQ(ran_at, 2000);
    EXPECT_EQ(ran_in, 1);
    EXPECT_EQ(sim.shard_stats().cross_messages, 1u);
    EXPECT_EQ(sim.shard_stats().cross_clamped, 0u);
}

TEST(ShardedSim, CrossShardBelowLookaheadClampsToBarrier) {
    Simulator sim;
    sim.configure_shards(2, kLookahead);
    std::int64_t ran_at = -1;
    sim.schedule_in_shard(0, at_us(0), [&] {
        // Violates the conservative contract (delay < lookahead): the engine
        // clamps to the window barrier instead of mutating the closed window.
        sim.schedule_in_shard(1, sim.now() + microseconds(10), [&] { ran_at = sim.now().us; });
    });
    sim.run();
    EXPECT_EQ(ran_at, 1000) << "clamped to w_end = t0 + lookahead";
    EXPECT_EQ(sim.shard_stats().cross_clamped, 1u);
}

TEST(ShardedSim, CrossShardMergesInSourceShardOrder) {
    Simulator sim;
    sim.configure_shards(4, kLookahead);
    std::vector<int> log;
    // Lanes 3, 1, 2 all send to lane 0 with the SAME arrival timestamp; the
    // barrier merges outboxes in ascending source-shard order, so arrival
    // FIFO order is source shard 1, 2, 3 regardless of send interleaving.
    for (const int src : {3, 1, 2})
        sim.schedule_in_shard(src, at_us(0), [&sim, &log, src] {
            sim.schedule_in_shard(0, at_us(5000), [&log, src] { log.push_back(src); });
        });
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedSim, SameLaneScheduleInShardStaysCancellable) {
    Simulator sim;
    sim.configure_shards(2, kLookahead);
    bool cancelled_ran = false;
    bool ran = false;
    sim.schedule_in_shard(1, at_us(0), [&] {
        // Into the *own* lane from inside a window: a direct push, live handle.
        const auto h = sim.schedule_in_shard(1, sim.now() + milliseconds(3.0),
                                             [&] { cancelled_ran = true; });
        EXPECT_TRUE(h.valid());
        EXPECT_TRUE(sim.cancel(h));
        sim.schedule_in_shard(1, sim.now() + milliseconds(3.0), [&] { ran = true; });
    });
    sim.run();
    EXPECT_FALSE(cancelled_ran);
    EXPECT_TRUE(ran);
    EXPECT_EQ(sim.shard_stats().cross_messages, 0u);
}

// --- property-based differential: sharded scheduler vs single-queue reference ------------

// A randomized event program over E entities. Ops are pre-assigned globally
// unique timestamp residues (t % kOps == op id), so every op has a distinct
// timestamp: cross-count comparison never depends on cross-lane tie order,
// which is *deliberately* shard-count-specific (window-batched).
struct Program {
    static constexpr int kEntities = 24;
    static constexpr int kOps = 480;

    struct Op {
        int id = 0;
        int entity = 0;          // entity whose lane the op runs in
        std::int64_t at_us = 0;  // initial ops; follow-ups derive theirs
        int send_to = -1;        // follow-up op on another entity, or -1
        int cancels = -1;        // initial op this op cancels when it runs, or -1
    };
    std::vector<Op> ops;      // [0, first_follow) are initial, rest follow-ups
    int first_follow = 0;

    // Smallest T >= min_t with T % kOps == id: keeps every timestamp unique.
    static std::int64_t align(std::int64_t min_t, int id) {
        const std::int64_t base = min_t - (min_t % kOps) + id;
        return base >= min_t ? base : base + kOps;
    }

    static Program generate(std::uint64_t seed) {
        Program p;
        Rng rng(seed);
        const int initial = kOps / 2;
        p.first_follow = initial;
        for (int i = 0; i < kOps; ++i) {
            Op op;
            op.id = i;
            op.entity = static_cast<int>(rng.below(kEntities));
            if (i < initial) op.at_us = align(1000 + static_cast<std::int64_t>(rng.below(200000)), i);
            p.ops.push_back(op);
        }
        // Half the initial ops fire a follow-up on some entity (usually a
        // different one — a cross-shard send for most shard counts), at
        // least one lookahead away so no configuration clamps it.
        for (int i = initial; i < kOps; ++i) {
            const int parent = static_cast<int>(rng.below(static_cast<std::uint64_t>(initial)));
            p.ops[static_cast<std::size_t>(parent)].send_to = i;
        }
        // Some late ops cancel a pending earlier-scheduled op on the SAME
        // entity (same lane under every sharding, so the handle is live).
        for (int tries = 0; tries < kOps / 8; ++tries) {
            const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(initial)));
            const int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(initial)));
            auto& canceller = p.ops[static_cast<std::size_t>(a)];
            const auto& victim = p.ops[static_cast<std::size_t>(b)];
            if (canceller.at_us < victim.at_us && canceller.cancels < 0 && a != b) {
                canceller.cancels = b;
                p.ops[static_cast<std::size_t>(a)].entity = victim.entity;
            }
        }
        return p;
    }
};

// Runs `p` on a fresh simulator with `shards` lanes; entity e lives in lane
// e % shards. Returns the per-entity execution history: (op id, time) in
// execution order.
std::vector<std::vector<std::pair<int, std::int64_t>>> run_program(const Program& p, int shards,
                                                                   bool parallel_dispatch) {
    Simulator sim;
    if (shards > 1) sim.configure_shards(shards, kLookahead);
    sim.set_parallel_dispatch(parallel_dispatch);
    std::vector<std::vector<std::pair<int, std::int64_t>>> history(Program::kEntities);
    std::vector<EventHandle> handles(p.ops.size());
    const auto lane_of = [shards](int entity) { return shards > 1 ? entity % shards : 0; };

    // InlineFn has a small buffer; capture one context pointer.
    struct Ctx {
        const Program* p;
        Simulator* sim;
        std::vector<std::vector<std::pair<int, std::int64_t>>>* history;
        std::vector<EventHandle>* handles;
        int shards;
    } ctx{&p, &sim, &history, &handles, shards};

    struct Runner {
        static void fire(Ctx* c, int id) {
            const Program::Op& op = c->p->ops[static_cast<std::size_t>(id)];
            (*c->history)[static_cast<std::size_t>(op.entity)].push_back(
                {id, c->sim->now().us});
            if (op.cancels >= 0) c->sim->cancel((*c->handles)[static_cast<std::size_t>(op.cancels)]);
            if (op.send_to >= 0) {
                const Program::Op& next = c->p->ops[static_cast<std::size_t>(op.send_to)];
                const std::int64_t at =
                    Program::align(c->sim->now().us + kLookahead.us + 1, next.id);
                const int dst = c->shards > 1 ? next.entity % c->shards : 0;
                c->sim->schedule_in_shard(dst, SimTime{at},
                                          [c, id = next.id] { fire(c, id); });
            }
        }
    };

    for (int i = 0; i < p.first_follow; ++i) {
        const Program::Op& op = p.ops[static_cast<std::size_t>(i)];
        handles[static_cast<std::size_t>(i)] = sim.schedule_in_shard(
            lane_of(op.entity), SimTime{op.at_us}, [&ctx, id = op.id] { Runner::fire(&ctx, id); });
    }
    sim.run();
    return history;
}

TEST(ShardedSimProperty, PerEntityHistoryMatchesSingleQueueReference) {
    for (const std::uint64_t seed : {7ull, 21ull, 1337ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        const Program p = Program::generate(seed);
        const auto reference = run_program(p, 1, false);
        std::size_t total = 0;
        for (const auto& h : reference) total += h.size();
        ASSERT_GT(total, static_cast<std::size_t>(Program::kOps) / 2)
            << "program must actually execute most ops";
        for (const int shards : {2, 4, 8}) {
            SCOPED_TRACE("shards=" + std::to_string(shards));
            EXPECT_EQ(run_program(p, shards, false), reference)
                << "what each entity runs, and when, must not depend on the shard count";
        }
    }
}

TEST(ShardedSimProperty, FixedConfigurationReplaysIdentically) {
    const Program p = Program::generate(99);
    for (const int shards : {2, 4, 8}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        EXPECT_EQ(run_program(p, shards, false), run_program(p, shards, false));
    }
}

TEST(ShardedSimProperty, ParallelDispatchMatchesSerialDispatch) {
    // The engine-level pool dispatch (lane-isolated workloads only) must
    // produce the same per-entity histories and aggregate counters as serial
    // lane-major dispatch — parallelism is an engine detail, not a semantic.
    for (const std::uint64_t seed : {5ull, 303ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        const Program p = Program::generate(seed);
        for (const int shards : {2, 8}) {
            SCOPED_TRACE("shards=" + std::to_string(shards));
            EXPECT_EQ(run_program(p, shards, true), run_program(p, shards, false));
        }
    }
}

TEST(ShardedSimProperty, TiedProgramsReplayIdentically) {
    // Deliberate same-timestamp ties across lanes: the cross-count order is
    // unspecified (window-batched), but any fixed shard count must replay
    // bit-for-bit, and the single-queue engine must stay FIFO.
    for (const int shards : {1, 4}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        const auto run_tied = [shards] {
            Simulator sim;
            if (shards > 1) sim.configure_shards(shards, kLookahead);
            std::vector<std::pair<int, int>> log;  // (lane, op)
            Rng rng(42);
            for (int op = 0; op < 200; ++op) {
                const int lane = shards > 1 ? static_cast<int>(rng.below(shards)) : 0;
                const std::int64_t at = 1000 * (1 + static_cast<std::int64_t>(rng.below(5)));
                sim.schedule_in_shard(lane, SimTime{at}, [&log, &sim, op] {
                    log.push_back({sim.current_shard(), op});
                });
            }
            sim.run();
            return log;
        };
        const auto first = run_tied();
        EXPECT_EQ(first.size(), 200u);
        EXPECT_EQ(run_tied(), first);
    }
}

TEST(ShardedSim, StatsAggregateAcrossLanes) {
    Simulator sim;
    sim.configure_shards(4, kLookahead);
    for (int lane = 0; lane < 4; ++lane)
        for (int i = 0; i <= lane; ++i) sim.schedule_in_shard(lane, at_us(0), [] {});
    const auto h = sim.schedule_in_shard(2, at_us(50), [] {});
    sim.cancel(h);
    sim.run();
    EXPECT_EQ(sim.stats().scheduled, 11u);
    EXPECT_EQ(sim.stats().dispatched, 10u);
    EXPECT_EQ(sim.stats().cancelled, 1u);
    EXPECT_EQ(sim.events_dispatched(), 10u);
    std::uint64_t per_lane = 0;
    for (int lane = 0; lane < 4; ++lane) per_lane += sim.shard_dispatched(lane);
    EXPECT_EQ(per_lane, 10u);
    EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace netsession::sim
