// Discrete-event engine: ordering, FIFO tie-breaking, cancellation,
// run_until semantics, reentrant scheduling.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace netsession::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
    Simulator s;
    std::vector<int> order;
    s.schedule_at(SimTime{300}, [&] { order.push_back(3); });
    s.schedule_at(SimTime{100}, [&] { order.push_back(1); });
    s.schedule_at(SimTime{200}, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now().us, 300);
}

TEST(Simulator, FifoTieBreakAtSameTimestamp) {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) s.schedule_at(SimTime{50}, [&, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, PastEventsClampToNow) {
    Simulator s;
    s.schedule_at(SimTime{100}, [] {});
    s.run();
    bool ran = false;
    s.schedule_at(SimTime{50}, [&] { ran = true; });  // in the past
    s.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(s.now().us, 100);
}

TEST(Simulator, CancelPreventsExecution) {
    Simulator s;
    bool ran = false;
    const auto h = s.schedule_at(SimTime{10}, [&] { ran = true; });
    EXPECT_TRUE(s.cancel(h));
    s.run();
    EXPECT_FALSE(ran);
}

TEST(Simulator, DoubleCancelIsNoop) {
    Simulator s;
    const auto h = s.schedule_at(SimTime{10}, [] {});
    EXPECT_TRUE(s.cancel(h));
    EXPECT_FALSE(s.cancel(h));
    EXPECT_FALSE(s.cancel(EventHandle{}));  // default handle inert
}

TEST(Simulator, CancelledSeqCanBeReusedSafely) {
    Simulator s;
    const auto h = s.schedule_at(SimTime{10}, [] {});
    s.cancel(h);
    bool ran = false;
    s.schedule_at(SimTime{20}, [&] { ran = true; });
    s.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(s.events_dispatched(), 1u);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
    Simulator s;
    std::vector<int> order;
    s.schedule_at(SimTime{100}, [&] { order.push_back(1); });
    s.schedule_at(SimTime{300}, [&] { order.push_back(3); });
    s.run_until(SimTime{200});
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(s.now().us, 200);
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
    Simulator s;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) s.schedule_after(Duration{10}, recurse);
    };
    s.schedule_after(Duration{10}, recurse);
    s.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(s.now().us, 50);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
    Simulator s;
    SimTime inner{};
    s.schedule_at(SimTime{100}, [&] {
        s.schedule_after(Duration{50}, [&] { inner = s.now(); });
    });
    s.run();
    EXPECT_EQ(inner.us, 150);
}

TEST(Simulator, PendingTracksLiveEvents) {
    Simulator s;
    const auto h1 = s.schedule_at(SimTime{10}, [] {});
    s.schedule_at(SimTime{20}, [] {});
    EXPECT_EQ(s.pending(), 2u);
    s.cancel(h1);
    EXPECT_EQ(s.pending(), 1u);
    s.run();
    EXPECT_EQ(s.pending(), 0u);
}

// Model-based property test: random interleavings of schedule/cancel/run
// against a naive reference (a sorted list).
class SimulatorModelTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorModelTest, MatchesNaiveReference) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
    Simulator sim;

    struct Ref {
        std::int64_t at;
        std::uint64_t id;
        bool cancelled = false;
    };
    std::vector<Ref> reference;
    std::vector<EventHandle> handles;
    std::vector<std::uint64_t> fired;
    std::uint64_t next_id = 0;

    std::int64_t clock_floor = 0;
    for (int step = 0; step < 200; ++step) {
        const double action = rng.uniform();
        if (action < 0.55) {
            // Schedule at a random future time.
            const std::int64_t at = clock_floor + static_cast<std::int64_t>(rng.below(1000));
            const std::uint64_t id = next_id++;
            handles.push_back(sim.schedule_at(SimTime{at}, [&fired, id] { fired.push_back(id); }));
            reference.push_back(Ref{std::max(at, clock_floor), id});
        } else if (action < 0.75 && !reference.empty()) {
            // Cancel a random not-yet-fired event.
            const auto k = rng.below(reference.size());
            // Strictly-future events must still be cancellable (an event at
            // exactly the current clock already fired during run_until).
            const bool was_live = !reference[k].cancelled && reference[k].at > clock_floor;
            const bool did = sim.cancel(handles[k]);
            if (was_live) { EXPECT_TRUE(did); }
            reference[k].cancelled = true;
        } else {
            // Run forward a random amount.
            const std::int64_t until = clock_floor + static_cast<std::int64_t>(rng.below(1500));
            sim.run_until(SimTime{until});
            EXPECT_EQ(sim.now().us, until);
            clock_floor = until;
        }
    }
    sim.run();

    // The reference firing order: by (time, id) over non-cancelled events.
    // Cancellation in the reference is only effective if it happened before
    // the event fired — replay chronologically to account for that.
    std::vector<std::pair<std::int64_t, std::uint64_t>> expected;
    for (const auto& r : reference)
        if (!r.cancelled) expected.emplace_back(r.at, r.id);
    std::sort(expected.begin(), expected.end());

    // Every expected event fired, in order; cancelled events may or may not
    // have fired depending on when the cancel landed, so check subsequence
    // containment instead of equality.
    std::size_t pos = 0;
    for (const auto& [at, id] : expected) {
        bool found = false;
        for (; pos < fired.size(); ++pos)
            if (fired[pos] == id) {
                found = true;
                ++pos;
                break;
            }
        EXPECT_TRUE(found) << "event " << id << " (t=" << at << ") missing or out of order";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorModelTest, ::testing::Range(1, 21));

TEST(SimTime, Arithmetic) {
    const SimTime t{1'000'000};
    EXPECT_DOUBLE_EQ(t.seconds(), 1.0);
    EXPECT_DOUBLE_EQ((t + hours(2.0)).hours() - t.hours(), 2.0);
    EXPECT_EQ((seconds(1.5) + milliseconds(500.0)).us, 2'000'000);
    EXPECT_EQ((days(1.0) * 0.5).us, hours(12.0).us);
    EXPECT_EQ((SimTime{500} - SimTime{200}).us, 300);
}

TEST(Simulator, RunUntilDoesNotLeapOverCancelledTop) {
    // Regression: a cancelled event at the head of the queue must not let
    // run_until dispatch a far-future event (the clock would jump).
    Simulator s;
    const auto h = s.schedule_at(SimTime{10}, [] {});
    bool far_ran = false;
    s.schedule_at(SimTime{1'000'000}, [&] { far_ran = true; });
    s.cancel(h);
    s.run_until(SimTime{100});
    EXPECT_FALSE(far_ran);
    EXPECT_EQ(s.now().us, 100);
    s.run();
    EXPECT_TRUE(far_ran);
}

TEST(Simulator, CancelAfterDispatchIsStructuralNoop) {
    // Regression: cancelling a handle whose event already ran used to return
    // true, decrement the live count below the truth, and leak the seq in
    // the cancelled set. It must be a structural no-op.
    Simulator s;
    int runs = 0;
    const auto h = s.schedule_at(SimTime{10}, [&] { ++runs; });
    s.run();
    EXPECT_EQ(runs, 1);
    EXPECT_FALSE(s.cancel(h));
    EXPECT_FALSE(s.cancel(h));  // and stays a no-op
    EXPECT_EQ(s.pending(), 0u);
    // The engine is not corrupted: later events still schedule and run.
    s.schedule_at(SimTime{20}, [&] { ++runs; });
    EXPECT_EQ(s.pending(), 1u);
    s.run();
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(s.stats().dispatched, 2u);
    EXPECT_EQ(s.stats().cancelled, 0u);
}

TEST(Simulator, StaleHandleCannotCancelSlotReuser) {
    // ABA guard: after an event dispatches, its slab slot is recycled; a
    // handle to the old event must not be able to cancel whatever event
    // lives in that slot now.
    Simulator s;
    const auto old = s.schedule_at(SimTime{10}, [] {});
    s.run();  // dispatches `old`, recycling its slot
    bool ran = false;
    const auto fresh = s.schedule_at(SimTime{20}, [&] { ran = true; });
    EXPECT_EQ(fresh.slot(), old.slot());  // the slot was in fact reused
    EXPECT_FALSE(s.cancel(old));
    s.run();
    EXPECT_TRUE(ran);
}

TEST(Simulator, StatsCountSchedulingAndHeapAllocations) {
    Simulator s;
    // Typical engine callbacks ([this, slot]-sized captures) must be stored
    // inline: the hot path may not touch the allocator.
    void* self = &s;
    std::uint32_t slot = 7;
    const auto h = s.schedule_at(SimTime{10}, [self, slot] {
        (void)self;
        (void)slot;
    });
    s.schedule_at(SimTime{20}, [] {});
    EXPECT_EQ(s.stats().callback_heap_allocs, 0u);
    // An oversized capture falls back to the heap — and is counted.
    struct Big {
        char bytes[128] = {};
    } big;
    s.schedule_at(SimTime{30}, [big] { (void)big; });
    EXPECT_EQ(s.stats().callback_heap_allocs, 1u);
    EXPECT_EQ(s.stats().scheduled, 3u);
    s.cancel(h);
    s.run();
    EXPECT_EQ(s.stats().cancelled, 1u);
    EXPECT_EQ(s.stats().dispatched, 2u);
}

TEST(InlineFn, InlineAndHeapStorage) {
    int hits = 0;
    InlineFn small([&hits] { ++hits; });
    EXPECT_FALSE(small.heap_allocated());
    small();
    EXPECT_EQ(hits, 1);

    struct Big {
        char bytes[128] = {};
    } big;
    InlineFn large([&hits, big] {
        (void)big;
        ++hits;
    });
    EXPECT_TRUE(large.heap_allocated());
    // Moving transfers the callable; the source becomes empty.
    InlineFn moved(std::move(large));
    moved();
    EXPECT_EQ(hits, 2);
    EXPECT_FALSE(large);  // NOLINT(bugprone-use-after-move): tested semantics
    EXPECT_TRUE(moved);
    moved.reset();
    EXPECT_FALSE(moved);
}

TEST(Simulator, ManyEventsStressOrdering) {
    Simulator s;
    std::int64_t last = -1;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i) {
        const std::int64_t at = (i * 7919) % 10007;
        s.schedule_at(SimTime{at}, [&, at] {
            if (at < last) monotonic = false;
            last = at;
        });
    }
    s.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(s.events_dispatched(), 10000u);
}

}  // namespace
}  // namespace netsession::sim
