// Streaming delivery: sequential pieces, playback state machine, QoE.
#include <gtest/gtest.h>

#include "accounting/accounting.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/streaming.hpp"

namespace netsession::peer {
namespace {

struct Harness {
    sim::Simulator sim;
    net::World world;
    edge::Catalog catalog;
    ObjectId video{3, 3};  // 300 MB video, p2p-enabled
    edge::EdgeNetwork edges;
    trace::TraceLog log;
    accounting::AccountingService accounting{log};
    control::ControlPlane plane;
    PeerRegistry registry;
    Rng rng{41};
    std::vector<std::unique_ptr<NetSessionClient>> clients;

    static net::AsGraph graph() {
        net::AsGraphConfig config;
        config.total_ases = 200;
        return net::AsGraph::generate(config, Rng(8));
    }

    Harness()
        : world(sim, graph()),
          edges((publish(catalog, video), world), catalog, edge::EdgeNetworkConfig{}),
          plane(world, edges.authority(), log, accounting, control::ControlPlaneConfig{},
                Rng(7)) {}

    static void publish(edge::Catalog& catalog, ObjectId video) {
        swarm::ContentObject object(video, CpCode{1000}, 31, 300_MB, 32);
        edge::ObjectPolicy policy;
        policy.p2p_enabled = true;
        catalog.publish(std::move(object), policy);
    }

    NetSessionClient& add_client(double down_mbps, bool uploads = false) {
        const net::CountryInfo* de = net::find_country("DE");
        net::HostInfo info;
        info.attach.location = net::Location{de->id, 0, de->center};
        info.attach.asn = world.as_graph().pick_for_country(de->id, rng);
        info.attach.nat = net::NatType::full_cone;
        info.up = mbps(down_mbps / 6.0);
        info.down = mbps(down_mbps);
        ClientConfig config;
        config.uploads_enabled = uploads;
        clients.push_back(std::make_unique<NetSessionClient>(
            world, plane, edges, catalog, registry, Guid{rng.next(), rng.next()},
            world.create_host(info), config, rng.child("c" + std::to_string(clients.size()))));
        clients.back()->start();
        return *clients.back();
    }

    const swarm::ContentObject& object() const { return catalog.find(video)->object; }
};

TEST(SequentialPicker, DeliversPiecesInOrder) {
    Harness h;
    NetSessionClient& c = h.add_client(25.0);
    h.sim.run_until(sim::SimTime{} + sim::seconds(30.0));

    std::vector<swarm::PieceIndex> order;
    NetSessionClient::DownloadOptions options;
    options.sequential = true;
    options.on_piece = [&](swarm::PieceIndex i) { order.push_back(i); };
    bool done = false;
    c.begin_download(h.video, [&](const trace::DownloadRecord&) { done = true; }, options);
    h.sim.run_until(sim::SimTime{} + sim::hours(2.0));
    ASSERT_TRUE(done);
    ASSERT_EQ(order.size(), h.object().piece_count());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i) << "sequential mode must deliver in order (single source)";
}

TEST(Streaming, SmoothPlaybackWhenBandwidthExceedsBitrate) {
    Harness h;
    NetSessionClient& c = h.add_client(25.0);
    h.sim.run_until(sim::SimTime{} + sim::seconds(30.0));

    StreamingConfig config;
    config.bitrate_bps = 4e6;  // 4 Mbps video on a 25 Mbps line
    bool done = false;
    StreamingMetrics result;
    StreamingSession session(h.world, c, h.object(), config,
                             [&](const StreamingMetrics& m) {
                                 done = true;
                                 result = m;
                             });
    session.start();
    h.sim.run_until(sim::SimTime{} + sim::hours(2.0));
    ASSERT_TRUE(done);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.rebuffer_events, 0) << "bandwidth >> bitrate: no stalls";
    EXPECT_GT(result.startup_delay_s, 0.0);
    EXPECT_LT(result.startup_delay_s, 60.0);
}

TEST(Streaming, RebuffersWhenBitrateExceedsBandwidth) {
    Harness h;
    NetSessionClient& c = h.add_client(4.0);  // 4 Mbps line...
    h.sim.run_until(sim::SimTime{} + sim::seconds(30.0));

    StreamingConfig config;
    config.bitrate_bps = 8e6;  // ...playing an 8 Mbps stream
    bool done = false;
    StreamingMetrics result;
    StreamingSession session(h.world, c, h.object(), config,
                             [&](const StreamingMetrics& m) {
                                 done = true;
                                 result = m;
                             });
    session.start();
    h.sim.run_until(sim::SimTime{} + sim::hours(4.0));
    ASSERT_TRUE(done);
    EXPECT_TRUE(result.completed);
    EXPECT_GT(result.rebuffer_events, 0);
    EXPECT_GT(result.rebuffer_time_s, 0.0);
}

TEST(Streaming, PeerAssistedStreamOffloadsBytes) {
    Harness h;
    NetSessionClient& seed = h.add_client(25.0, /*uploads=*/true);
    NetSessionClient& viewer = h.add_client(25.0);
    h.sim.run_until(sim::SimTime{} + sim::seconds(30.0));
    bool seeded = false;
    seed.begin_download(h.video, [&](const trace::DownloadRecord&) { seeded = true; });
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    ASSERT_TRUE(seeded);

    StreamingConfig config;
    config.bitrate_bps = 4e6;
    bool done = false;
    StreamingMetrics result;
    StreamingSession session(h.world, viewer, h.object(), config,
                             [&](const StreamingMetrics& m) {
                                 done = true;
                                 result = m;
                             });
    session.start();
    h.sim.run_until(h.sim.now() + sim::hours(4.0));
    ASSERT_TRUE(done);
    EXPECT_TRUE(result.completed);
    EXPECT_GT(result.bytes_from_peers, 0) << "peers serve parts of the stream";
    EXPECT_GT(result.bytes_from_infrastructure, 0);
}

TEST(Streaming, AbortedDownloadReportsIncompleteSession) {
    Harness h;
    NetSessionClient& c = h.add_client(8.0);
    h.sim.run_until(sim::SimTime{} + sim::seconds(30.0));
    StreamingConfig config;
    config.bitrate_bps = 4e6;
    bool done = false;
    StreamingMetrics result;
    StreamingSession session(h.world, c, h.object(), config,
                             [&](const StreamingMetrics& m) {
                                 done = true;
                                 result = m;
                             });
    session.start();
    h.sim.run_until(h.sim.now() + sim::minutes(1.0));
    c.abort_download(h.video, trace::DownloadOutcome::aborted_by_user);
    h.sim.run_until(h.sim.now() + sim::minutes(5.0));
    ASSERT_TRUE(done);
    EXPECT_FALSE(result.completed);
}

TEST(Streaming, PieceDurationMatchesBitrate) {
    Harness h;
    NetSessionClient& c = h.add_client(25.0);
    StreamingConfig config;
    config.bitrate_bps = 8e6;
    StreamingSession session(h.world, c, h.object(), config, nullptr);
    const auto& object = h.object();
    EXPECT_NEAR(session.piece_duration_s(0),
                8.0 * static_cast<double>(object.piece_length(0)) / 8e6, 1e-9);
}

}  // namespace
}  // namespace netsession::peer
