// Hibernation: demoting an offline client to a cold serialized record and
// rehydrating it byte-identically (docs/SIMULATOR.md "Memory layout").
//
// The central oracle is differential: the same deterministic scenario run
// twice — once hibernating between sessions, once never hibernating
// (hibernate_offline = false) — must produce bitwise-equal download records
// and install-state chains. The remaining tests pin the cold-query surface
// (answers straight from the blob, no rehydration) and the pool accounting
// the runtime auditor cross-checks.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "accounting/accounting.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/netsession_client.hpp"

namespace netsession::peer {
namespace {

struct Harness {
    sim::Simulator sim;
    net::World world;
    edge::Catalog catalog;
    ObjectId big{1, 1};    // p2p-enabled 400 MB object
    ObjectId small{2, 2};  // infra-only 10 MB object
    edge::EdgeNetwork edges;
    trace::TraceLog log;
    accounting::AccountingService accounting{log};
    control::ControlPlane plane;
    PeerRegistry registry;
    Rng rng{31};
    std::vector<std::unique_ptr<NetSessionClient>> clients;

    static net::AsGraph graph() {
        net::AsGraphConfig config;
        config.total_ases = 200;
        return net::AsGraph::generate(config, Rng(8));
    }

    Harness()
        : world(sim, graph()),
          edges((publish(catalog, big, small), world), catalog, edge::EdgeNetworkConfig{}),
          plane(world, edges.authority(), log, accounting, control::ControlPlaneConfig{},
                Rng(77)) {}

    static void publish(edge::Catalog& catalog, ObjectId big, ObjectId small) {
        {
            swarm::ContentObject object(big, CpCode{1000}, 11, 400_MB, 32);
            edge::ObjectPolicy policy;
            policy.p2p_enabled = true;
            catalog.publish(std::move(object), policy);
        }
        {
            swarm::ContentObject object(small, CpCode{1001}, 12, 10_MB, 8);
            catalog.publish(std::move(object), edge::ObjectPolicy{});
        }
    }

    NetSessionClient& add_client(ClientConfig config) {
        const net::CountryInfo* c = net::find_country("DE");
        net::HostInfo info;
        info.attach.location = net::Location{c->id, 0, c->center};
        info.attach.asn = world.as_graph().pick_for_country(c->id, rng);
        info.attach.nat = net::NatType::full_cone;
        info.up = mbps(4.0);
        info.down = mbps(24.0);
        const HostId host = world.create_host(info);
        clients.push_back(std::make_unique<NetSessionClient>(
            world, plane, edges, catalog, registry, Guid{rng.next(), rng.next()}, host, config,
            rng.child("client-" + std::to_string(clients.size()))));
        return *clients.back();
    }

    void settle(double seconds = 30.0) { sim.run_until(sim.now() + sim::seconds(seconds)); }
};

TEST(Hibernation, ClientsAreBornHibernatedAndStartRehydrates) {
    Harness h;
    NetSessionClient& c = h.add_client(ClientConfig{});
    EXPECT_TRUE(c.hibernated()) << "an offline install costs a cold record, not a Resident";
    EXPECT_EQ(c.open_downloads(), 0);

    c.start();
    EXPECT_FALSE(c.hibernated());
    h.settle();
    EXPECT_TRUE(c.running());

    c.hibernate();
    EXPECT_FALSE(c.hibernated()) << "hibernate() must be a no-op while running";

    c.stop();
    EXPECT_FALSE(c.hibernated()) << "stop() leaves state resident; the driver demotes";
    c.hibernate();
    EXPECT_TRUE(c.hibernated());
    c.hibernate();  // idempotent
    EXPECT_TRUE(c.hibernated());
}

TEST(Hibernation, DisabledByConfigIsANoOp) {
    Harness h;
    ClientConfig config;
    config.hibernate_offline = false;  // what NS_NO_HIBERNATE=1 sets globally
    NetSessionClient& c = h.add_client(config);
    EXPECT_FALSE(c.hibernated()) << "with the knob off a client is always resident";
    c.start();
    h.settle();
    c.stop();
    c.hibernate();
    EXPECT_FALSE(c.hibernated());
}

TEST(Hibernation, ColdQueriesAnswerWithoutRehydrating) {
    Harness h;
    NetSessionClient& c = h.add_client(ClientConfig{});
    c.start();
    h.settle();
    bool done = false;
    c.begin_download(h.small, [&](const trace::DownloadRecord&) { done = true; });
    h.sim.run_until(h.sim.now() + sim::hours(1.0));
    ASSERT_TRUE(done);
    ASSERT_TRUE(c.has_cached(h.small));
    c.stop();
    c.hibernate();
    ASSERT_TRUE(c.hibernated());

    EXPECT_TRUE(c.has_cached(h.small));
    EXPECT_FALSE(c.has_cached(h.big));
    const auto cached = c.cached_objects();
    ASSERT_EQ(cached.size(), 1u);
    EXPECT_EQ(cached[0], h.small);
    EXPECT_TRUE(c.paused_downloads().empty());
    EXPECT_EQ(c.open_downloads(), 0);
    EXPECT_TRUE(c.hibernated()) << "cold queries must not wake the client";
}

TEST(Hibernation, RetentionExpiryIsAppliedToColdEntries) {
    Harness h;
    ClientConfig config;
    config.cache_retention = sim::hours(6.0);
    NetSessionClient& c = h.add_client(config);
    c.start();
    h.settle();
    bool done = false;
    c.begin_download(h.small, [&](const trace::DownloadRecord&) { done = true; });
    h.sim.run_until(h.sim.now() + sim::hours(1.0));
    ASSERT_TRUE(done);
    c.stop();
    c.hibernate();

    EXPECT_TRUE(c.has_cached(h.small)) << "retention has not elapsed yet";
    h.sim.run_until(h.sim.now() + sim::hours(7.0));
    EXPECT_FALSE(c.has_cached(h.small)) << "cold entries expire exactly like timed ones";
    EXPECT_TRUE(c.cached_objects().empty());
    EXPECT_TRUE(c.hibernated());

    // The lazy sweep at the next start erases the expired entry for real.
    c.start();
    EXPECT_TRUE(c.cached_objects().empty());
    c.stop();
}

TEST(Hibernation, PausedDownloadReleasesItsPoolSlotWhileCold) {
    Harness h;
    NetSessionClient& c = h.add_client(ClientConfig{});
    c.start();
    h.settle();
    c.begin_download(h.big);
    h.sim.run_until(h.sim.now() + sim::seconds(60.0));  // partial progress
    c.stop();
    EXPECT_EQ(c.open_downloads(), 1);
    EXPECT_EQ(h.registry.downloads().live(), 1u);

    c.hibernate();
    ASSERT_TRUE(c.hibernated());
    EXPECT_EQ(h.registry.downloads().live(), 0u)
        << "a hibernated client must hold no arena slots (auditor contract)";
    EXPECT_EQ(c.open_downloads(), 0);
    // ...but the paused download is still visible, straight from the blob.
    const auto paused = c.paused_downloads();
    ASSERT_EQ(paused.size(), 1u);
    EXPECT_EQ(paused[0], h.big);
    EXPECT_GT(h.registry.cold().records(), 0u);
    EXPECT_GT(h.registry.cold().bytes_live(), 0u);

    c.start();
    EXPECT_EQ(h.registry.downloads().live(), 1u) << "rehydration re-acquires the slot";
    EXPECT_EQ(c.open_downloads(), 1);
    c.resume_download(h.big);
    bool finished = false;
    // Re-arm the finish probe via a second paused/resume cycle is not needed:
    // completion is observed through the cache instead.
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    finished = c.has_cached(h.big);
    EXPECT_TRUE(finished) << "a rehydrated download must finish from where it left off";
    c.stop();
}

TEST(Hibernation, AbortWhileHibernatedWakesFlushesAndRedemotes) {
    Harness h;
    NetSessionClient& c = h.add_client(ClientConfig{});
    c.start();
    h.settle();
    trace::DownloadRecord record;
    bool done = false;
    c.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    h.sim.run_until(h.sim.now() + sim::seconds(60.0));
    c.stop();
    c.hibernate();
    ASSERT_TRUE(c.hibernated());

    // The user's patience timer fires against an offline, demoted client.
    c.abort_download(h.big, trace::DownloadOutcome::aborted_by_user);
    ASSERT_TRUE(done) << "the parked finish callback must survive hibernation";
    EXPECT_EQ(record.outcome, trace::DownloadOutcome::aborted_by_user);
    EXPECT_GT(record.bytes_from_infrastructure, 0) << "partial progress is reported";
    EXPECT_TRUE(c.hibernated()) << "the client re-demotes after the abort";
    EXPECT_TRUE(c.paused_downloads().empty());
    EXPECT_EQ(h.registry.downloads().live(), 0u);
}

TEST(Hibernation, FlushUnfinishedReadsTheColdBlobDirectly) {
    Harness h;
    NetSessionClient& c = h.add_client(ClientConfig{});
    c.start();
    h.settle();
    c.begin_download(h.big);
    h.sim.run_until(h.sim.now() + sim::seconds(60.0));
    c.stop();
    c.hibernate();
    const std::size_t before = h.log.downloads().size();

    c.flush_unfinished();
    ASSERT_EQ(h.log.downloads().size(), before + 1);
    const auto& rec = h.log.downloads().back();
    EXPECT_EQ(rec.object, h.big);
    EXPECT_EQ(rec.outcome, trace::DownloadOutcome::aborted_by_user)
        << "cold downloads are paused by construction";
    EXPECT_GT(rec.bytes_from_infrastructure, 0);
    EXPECT_TRUE(c.hibernated()) << "terminal flush must not rehydrate the population";
}

// The differential oracle at unit scale: one deterministic mid-download
// pause/resume scenario, run in two isolated harnesses whose only difference
// is the hibernate_offline knob. Every observable — the final download
// record (bitwise), upload totals, the secondary-GUID chain — must match.
struct TwinResult {
    trace::DownloadRecord record{};
    std::vector<SecondaryGuid> chain;
    Bytes uploaded = 0;
    std::vector<ObjectId> cached;
};

TwinResult run_twin(bool hibernate_offline) {
    Harness h;
    ClientConfig config;
    config.hibernate_offline = hibernate_offline;
    NetSessionClient& c = h.add_client(config);
    TwinResult out;
    bool done = false;
    c.start();
    h.settle();
    c.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        out.record = r;
        done = true;
    });
    h.sim.run_until(h.sim.now() + sim::seconds(90.0));  // partial progress

    // Three offline gaps; with the knob on, each demotes to the ColdStore.
    for (int cycle = 0; cycle < 3; ++cycle) {
        c.stop();
        c.hibernate();
        EXPECT_EQ(c.hibernated(), hibernate_offline);
        h.sim.run_until(h.sim.now() + sim::hours(2.0));
        c.start();
        h.settle();
        c.resume_download(h.big);
        h.sim.run_until(h.sim.now() + sim::seconds(45.0));
    }
    h.sim.run_until(h.sim.now() + sim::hours(3.0));
    EXPECT_TRUE(done);
    out.chain = c.secondary_chain();
    out.uploaded = c.uploaded_bytes();
    out.cached = c.cached_objects();
    c.stop();
    return out;
}

TEST(Hibernation, RoundTripIsByteIdenticalToNeverHibernatingTwin) {
    const TwinResult cold = run_twin(true);
    const TwinResult warm = run_twin(false);

    static_assert(std::is_trivially_copyable_v<trace::DownloadRecord>);
    EXPECT_EQ(std::memcmp(&cold.record, &warm.record, sizeof(trace::DownloadRecord)), 0)
        << "hibernation leaked into the download record";
    EXPECT_EQ(cold.record.outcome, trace::DownloadOutcome::completed);
    EXPECT_EQ(cold.record.total_bytes(), 400_MB);
    ASSERT_EQ(cold.chain.size(), warm.chain.size());
    for (std::size_t i = 0; i < cold.chain.size(); ++i)
        EXPECT_EQ(cold.chain[i], warm.chain[i]) << "chain diverged at index " << i;
    EXPECT_EQ(cold.uploaded, warm.uploaded);
    EXPECT_EQ(cold.cached, warm.cached);
}

}  // namespace
}  // namespace netsession::peer
