// NetSession Interface client: full protocol behaviours against a real
// control plane + edge network on the simulator.
#include <gtest/gtest.h>

#include "accounting/accounting.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/netsession_client.hpp"

namespace netsession::peer {
namespace {

struct Harness {
    sim::Simulator sim;
    net::World world;
    edge::Catalog catalog;
    ObjectId big{1, 1};    // p2p-enabled 400 MB object
    ObjectId small{2, 2};  // infra-only 10 MB object
    edge::EdgeNetwork edges;
    trace::TraceLog log;
    accounting::AccountingService accounting{log};
    control::ControlPlane plane;
    PeerRegistry registry;
    Rng rng{31};
    std::vector<std::unique_ptr<NetSessionClient>> clients;

    static net::AsGraph graph() {
        net::AsGraphConfig config;
        config.total_ases = 200;
        return net::AsGraph::generate(config, Rng(8));
    }

    Harness()
        : world(sim, graph()),
          edges((publish(catalog, big, small), world), catalog, edge::EdgeNetworkConfig{}),
          plane(world, edges.authority(), log, accounting, control::ControlPlaneConfig{},
                Rng(77)) {
        accounting.set_ground_truth([this](Guid guid, ObjectId object) {
            Bytes total = 0;
            for (const auto& server : edges.servers()) total += server->bytes_served(guid, object);
            return total;
        });
    }

    static void publish(edge::Catalog& catalog, ObjectId big, ObjectId small) {
        {
            swarm::ContentObject object(big, CpCode{1000}, 11, 400_MB, 32);
            edge::ObjectPolicy policy;
            policy.p2p_enabled = true;
            catalog.publish(std::move(object), policy);
        }
        {
            swarm::ContentObject object(small, CpCode{1001}, 12, 10_MB, 8);
            catalog.publish(std::move(object), edge::ObjectPolicy{});
        }
    }

    NetSessionClient& add_client(std::string_view alpha2, bool uploads_enabled,
                                 net::NatType nat = net::NatType::full_cone) {
        const net::CountryInfo* c = net::find_country(alpha2);
        net::HostInfo info;
        info.attach.location = net::Location{c->id, 0, c->center};
        info.attach.asn = world.as_graph().pick_for_country(c->id, rng);
        info.attach.nat = nat;
        info.up = mbps(4.0);
        info.down = mbps(24.0);
        const HostId host = world.create_host(info);
        ClientConfig config;
        config.uploads_enabled = uploads_enabled;
        clients.push_back(std::make_unique<NetSessionClient>(
            world, plane, edges, catalog, registry, Guid{rng.next(), rng.next()}, host, config,
            rng.child("client-" + std::to_string(clients.size()))));
        return *clients.back();
    }

    void settle(double seconds = 30.0) { sim.run_until(sim.now() + sim::seconds(seconds)); }
};

TEST(Client, StartConnectsAndLogsIn) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", true);
    c.start();
    h.settle();
    EXPECT_TRUE(c.running());
    EXPECT_TRUE(c.connected());
    ASSERT_EQ(h.log.logins().size(), 1u);
    EXPECT_EQ(h.log.logins()[0].guid, c.guid());
}

TEST(Client, EachStartAppendsASecondaryGuid) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", false);
    for (int i = 0; i < 3; ++i) {
        c.start();
        h.settle();
        c.stop();
        h.settle();
    }
    EXPECT_EQ(c.secondary_chain().size(), 3u);
    // Last login reports the most recent secondaries, newest first.
    const auto& last = h.log.logins().back();
    EXPECT_EQ(last.secondary_guids[0], c.secondary_chain().back());
}

TEST(Client, EdgeOnlyDownloadCompletesWithCorrectBytes) {
    Harness h;
    NetSessionClient& c = h.add_client("FR", false);
    c.start();
    h.settle();
    trace::DownloadRecord record;
    bool done = false;
    c.begin_download(h.small, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    h.sim.run_until(h.sim.now() + sim::hours(1.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(record.outcome, trace::DownloadOutcome::completed);
    EXPECT_EQ(record.bytes_from_infrastructure, 10_MB);
    EXPECT_EQ(record.bytes_from_peers, 0);
    EXPECT_FALSE(record.p2p_enabled);
    EXPECT_TRUE(c.has_cached(h.small));
    // The report reached the CN and passed the accounting filter.
    h.settle();
    EXPECT_EQ(h.accounting.accepted(), 1);
}

TEST(Client, PeerAssistedDownloadUsesSeed) {
    Harness h;
    NetSessionClient& seed = h.add_client("DE", true);
    NetSessionClient& leech = h.add_client("DE", false);
    seed.start();
    leech.start();
    h.settle();
    // Seed the object via a normal download, then let the leech fetch it
    // peer-assisted.
    bool seeded = false;
    seed.begin_download(h.big, [&](const trace::DownloadRecord&) { seeded = true; });
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    ASSERT_TRUE(seeded);

    trace::DownloadRecord record;
    bool done = false;
    leech.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    h.sim.run_until(h.sim.now() + sim::hours(4.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(record.outcome, trace::DownloadOutcome::completed);
    EXPECT_GT(record.bytes_from_peers, 0) << "the seed must contribute";
    EXPECT_GT(record.bytes_from_infrastructure, 0)
        << "there is always at least one edge connection (§3.3)";
    EXPECT_EQ(record.total_bytes(), 400_MB);
    EXPECT_GT(seed.uploaded_bytes(), 0);
    // The transfer detail reached the trace for the §6.1 analysis.
    bool transfer_logged = false;
    for (const auto& t : h.log.transfers())
        if (t.from_guid == seed.guid() && t.to_guid == leech.guid()) transfer_logged = true;
    EXPECT_TRUE(transfer_logged);
}

TEST(Client, UploadsDisabledPeerDoesNotServe) {
    Harness h;
    NetSessionClient& seed = h.add_client("DE", false);  // uploads OFF
    NetSessionClient& leech = h.add_client("DE", false);
    seed.start();
    leech.start();
    h.settle();
    bool seeded = false;
    seed.begin_download(h.big, [&](const trace::DownloadRecord&) { seeded = true; });
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    ASSERT_TRUE(seeded);

    trace::DownloadRecord record;
    bool done = false;
    leech.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    h.sim.run_until(h.sim.now() + sim::hours(4.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(record.bytes_from_peers, 0);
    EXPECT_EQ(record.bytes_from_infrastructure, 400_MB)
        << "no adverse effect on the non-contributor's own download (§3.4)";
}

TEST(Client, PauseAndResumeContinueWhereLeftOff) {
    Harness h;
    NetSessionClient& c = h.add_client("BR", false);
    c.start();
    h.settle();
    trace::DownloadRecord record;
    bool done = false;
    c.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    h.sim.run_until(h.sim.now() + sim::minutes(2.0));
    c.pause_download(h.big);
    EXPECT_FALSE(c.download_active(h.big));
    EXPECT_EQ(c.paused_downloads().size(), 1u);
    h.sim.run_until(h.sim.now() + sim::hours(1.0));
    EXPECT_FALSE(done);
    c.resume_download(h.big);
    h.sim.run_until(h.sim.now() + sim::hours(6.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(record.outcome, trace::DownloadOutcome::completed);
    EXPECT_EQ(record.total_bytes(), 400_MB) << "no bytes are re-downloaded after resume";
}

TEST(Client, AbortReportsOutcomeAndPartialBytes) {
    Harness h;
    NetSessionClient& c = h.add_client("BR", false);
    c.start();
    h.settle();
    trace::DownloadRecord record;
    bool done = false;
    c.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    h.sim.run_until(h.sim.now() + sim::minutes(1.0));
    c.abort_download(h.big, trace::DownloadOutcome::aborted_by_user);
    ASSERT_TRUE(done);
    EXPECT_EQ(record.outcome, trace::DownloadOutcome::aborted_by_user);
    EXPECT_GT(record.bytes_from_infrastructure, 0);
    EXPECT_LT(record.total_bytes(), 400_MB);
    EXPECT_FALSE(c.has_cached(h.big));
}

TEST(Client, StopPausesDownloadsAndReportsOnNextLogin) {
    Harness h;
    NetSessionClient& c = h.add_client("FR", false);
    c.start();
    h.settle();
    bool done = false;
    c.begin_download(h.big, [&](const trace::DownloadRecord&) { done = true; });
    h.sim.run_until(h.sim.now() + sim::minutes(2.0));
    c.stop();
    EXPECT_EQ(c.paused_downloads().size(), 1u);
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    EXPECT_FALSE(done);
    c.start();
    h.settle();
    c.resume_download(h.big);
    h.sim.run_until(h.sim.now() + sim::hours(6.0));
    EXPECT_TRUE(done);
}

TEST(Client, CnFailureFallsBackToEdgeAndReconnects) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", false);
    c.start();
    h.settle();
    ASSERT_TRUE(c.connected());

    // Kill every CN: downloads must still complete from the edge (§3.8).
    for (auto& cn : h.plane.cns()) h.plane.fail_cn(cn->id());
    h.settle();
    EXPECT_FALSE(c.connected());
    bool done = false;
    c.begin_download(h.small, [&](const trace::DownloadRecord&) { done = true; });
    h.sim.run_until(h.sim.now() + sim::hours(1.0));
    EXPECT_TRUE(done) << "edge fallback keeps downloads working";

    // Restart the CNs; the client's backoff reconnect finds them.
    for (auto& cn : h.plane.cns()) h.plane.restart_cn(cn->id());
    h.sim.run_until(h.sim.now() + sim::minutes(10.0));
    EXPECT_TRUE(c.connected());
    EXPECT_EQ(h.accounting.accepted(), 1) << "the pending report is flushed on re-login";
}

TEST(Client, UploaderChurnMidTransferFallsBackAndCompletes) {
    // Mid-transfer uploader churn (§3.8): seeds crash abruptly — no goodbye
    // messages, flows just vanish — while the leech is pulling pieces from
    // them. The stall watchdog must notice the dead flows, drop the sources,
    // and the download must still complete via the remaining seed + edge.
    Harness h;
    NetSessionClient& seed_a = h.add_client("DE", true);
    NetSessionClient& seed_b = h.add_client("DE", true);
    NetSessionClient& survivor = h.add_client("DE", true);
    NetSessionClient& leech = h.add_client("DE", false);
    for (NetSessionClient* c : {&seed_a, &seed_b, &survivor, &leech}) c->start();
    h.settle();
    int seeded = 0;
    for (NetSessionClient* c : {&seed_a, &seed_b, &survivor})
        c->begin_download(h.big, [&](const trace::DownloadRecord&) { ++seeded; });
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    ASSERT_EQ(seeded, 3);

    trace::DownloadRecord record;
    bool done = false;
    leech.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    // Let peer transfers get going, then crash two of the three uploaders.
    h.sim.run_until(h.sim.now() + sim::seconds(30.0));
    ASSERT_FALSE(done) << "the 400 MB object cannot be finished yet";
    seed_a.crash();
    seed_b.crash();
    EXPECT_FALSE(seed_a.running());

    h.sim.run_until(h.sim.now() + sim::hours(6.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(record.outcome, trace::DownloadOutcome::completed);
    EXPECT_EQ(record.total_bytes(), 400_MB);

    // The watchdog must have seen the dead flows and logged the repairs.
    std::int64_t peer_stalls = 0;
    for (const auto& d : h.log.degradations())
        if (d.kind == trace::DegradationKind::peer_stall && d.guid == leech.guid())
            ++peer_stalls;
    EXPECT_GT(peer_stalls, 0) << "crashed uploaders must be detected as stalls";
}

TEST(Client, ReAddRepopulatesDnAfterFailure) {
    Harness h;
    NetSessionClient& seed = h.add_client("DE", true);
    seed.start();
    h.settle();
    bool seeded = false;
    seed.begin_download(h.big, [&](const trace::DownloadRecord&) { seeded = true; });
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    ASSERT_TRUE(seeded);

    control::ConnectionNode* cn = h.plane.closest_cn(seed.host());
    control::DatabaseNode* dn = h.plane.local_dn(cn->region());
    ASSERT_EQ(dn->copies(h.big), 1);
    h.plane.fail_dn(dn->id());
    EXPECT_EQ(dn->copies(h.big), 0);
    h.plane.restart_dn(dn->id());
    h.settle(60.0);
    EXPECT_EQ(dn->copies(h.big), 1) << "RE-ADD restores the directory (§3.8)";
}

TEST(Client, DisablingUploadsWithdrawsContent) {
    Harness h;
    NetSessionClient& seed = h.add_client("DE", true);
    seed.start();
    h.settle();
    bool seeded = false;
    seed.begin_download(h.big, [&](const trace::DownloadRecord&) { seeded = true; });
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    ASSERT_TRUE(seeded);
    control::DatabaseNode* dn = h.plane.local_dn(h.plane.closest_cn(seed.host())->region());
    ASSERT_EQ(dn->copies(h.big), 1);

    seed.set_uploads_enabled(false);
    h.settle();
    EXPECT_EQ(dn->copies(h.big), 0);
    seed.set_uploads_enabled(true);
    h.settle();
    EXPECT_EQ(dn->copies(h.big), 1);
}

TEST(Client, CorruptUploaderIsDetectedAndContentNotPropagated) {
    Harness h;
    NetSessionClient& bad_seed = h.add_client("DE", true);
    bad_seed.set_corrupt_uploads(true);
    NetSessionClient& leech = h.add_client("DE", false);
    bad_seed.start();
    leech.start();
    h.settle();
    bool seeded = false;
    bad_seed.begin_download(h.big, [&](const trace::DownloadRecord&) { seeded = true; });
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    ASSERT_TRUE(seeded);

    trace::DownloadRecord record;
    bool done = false;
    leech.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    h.sim.run_until(h.sim.now() + sim::hours(6.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(record.outcome, trace::DownloadOutcome::completed)
        << "the edge covers what the bad seed cannot deliver";
    EXPECT_EQ(record.bytes_from_peers, 0) << "every corrupt piece was discarded (§3.5)";
    EXPECT_GT(h.plane.monitoring().problems(control::ProblemKind::piece_corruption), 0);
}

TEST(Client, WatchdogSweepBoundsBlacklistGrowth) {
    // Regression: blacklist entries used to expire only lazily, when the
    // same GUID was consulted again — a source that never came back left its
    // entry behind forever, so long-lived clients under churny swarms grew
    // the table without bound. The stall watchdog now sweeps expired bans.
    Harness h;
    NetSessionClient& bad_seed = h.add_client("DE", true);
    bad_seed.set_corrupt_uploads(true);

    // A leech with an aggressive blacklist (one strike, 60 s ban) and a slow
    // downlink so its download far outlives the ban + watchdog period.
    const net::CountryInfo* c = net::find_country("DE");
    net::HostInfo info;
    info.attach.location = net::Location{c->id, 0, c->center};
    info.attach.asn = h.world.as_graph().pick_for_country(c->id, h.rng);
    info.attach.nat = net::NatType::full_cone;
    info.up = mbps(4.0);
    info.down = mbps(8.0);
    const HostId host = h.world.create_host(info);
    ClientConfig config;
    config.blacklist_failures = 1;
    config.blacklist_duration_s = 60.0;
    NetSessionClient leech(h.world, h.plane, h.edges, h.catalog, h.registry,
                           Guid{h.rng.next(), h.rng.next()}, host, config, h.rng.child("leech"));

    bad_seed.start();
    leech.start();
    h.settle();
    bool seeded = false;
    bad_seed.begin_download(h.big, [&](const trace::DownloadRecord&) { seeded = true; });
    h.sim.run_until(h.sim.now() + sim::hours(2.0));
    ASSERT_TRUE(seeded);

    leech.begin_download(h.big, {});
    // The first corrupt piece bans the seed.
    for (int i = 0; i < 120 && leech.blacklist_size() == 0; ++i)
        h.sim.run_until(h.sim.now() + sim::seconds(1.0));
    ASSERT_EQ(leech.blacklist_size(), 1u);

    // The banned seed never reconnects, so only the watchdog sweep can drop
    // the entry: within ban + one watchdog period it must be gone, with the
    // download still open (i.e. swept mid-flight, not at teardown).
    h.sim.run_until(h.sim.now() +
                    sim::seconds(config.blacklist_duration_s + config.watchdog_interval_s + 5.0));
    EXPECT_EQ(leech.blacklist_size(), 0u);
    EXPECT_TRUE(leech.download_active(h.big));
}

TEST(Client, MoveToReattachesAndRelogsIn) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", false);
    c.start();
    h.settle();
    const auto logins_before = h.log.logins().size();
    const net::IpAddr old_ip = h.world.host(c.host()).attach.ip;

    const net::CountryInfo* jp = net::find_country("JP");
    const Asn asn = h.world.as_graph().pick_for_country(jp->id, h.rng);
    c.move_to(net::Location{jp->id, 0, jp->center}, asn, net::NatType::port_restricted);
    h.settle(120.0);
    EXPECT_TRUE(c.connected());
    EXPECT_GT(h.log.logins().size(), logins_before);
    EXPECT_NE(h.log.logins().back().ip, old_ip);
}

TEST(Client, SnapshotRestoreRewindsSecondaryChain) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", false);
    for (int i = 0; i < 2; ++i) {
        c.start();
        h.settle();
        c.stop();
        h.settle();
    }
    const auto snapshot = c.snapshot_state();
    c.start();
    h.settle();
    c.stop();
    h.settle();
    EXPECT_EQ(c.secondary_chain().size(), 3u);
    c.restore_state(snapshot);
    EXPECT_EQ(c.secondary_chain().size(), 2u);
    EXPECT_EQ(c.guid(), snapshot.guid);
    c.start();
    h.settle();
    EXPECT_EQ(c.secondary_chain().size(), 3u) << "a branch forms at the restored state";
}

TEST(Client, TamperedReportIsRejectedByAccounting) {
    Harness h;
    NetSessionClient& c = h.add_client("FR", false);
    c.set_report_tamper([](trace::DownloadRecord& r) {
        r.bytes_from_infrastructure *= 10;  // inflate the provider's bill
    });
    c.start();
    h.settle();
    bool done = false;
    c.begin_download(h.small, [&](const trace::DownloadRecord&) { done = true; });
    h.sim.run_until(h.sim.now() + sim::hours(1.0));
    ASSERT_TRUE(done);
    h.settle();
    EXPECT_EQ(h.accounting.accepted(), 0);
    EXPECT_EQ(h.accounting.rejected(), 1)
        << "edge ground truth exposes the accounting attack (§3.5)";
}

TEST(Client, UserTrafficThrottlesUploadCapacityOnly) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", true);
    c.start();
    h.settle();
    const Rate base_up = h.world.flows().up_capacity(c.host());
    const Rate base_down = h.world.flows().down_capacity(c.host());
    c.set_user_traffic(true);
    EXPECT_LT(h.world.flows().up_capacity(c.host()), base_up);
    EXPECT_DOUBLE_EQ(h.world.flows().down_capacity(c.host()), base_down);
    c.set_user_traffic(false);
    EXPECT_DOUBLE_EQ(h.world.flows().up_capacity(c.host()), base_up);
}

TEST(Client, CacheCapEvictsOldestCopy) {
    Harness h;
    // Publish three more small objects so the cache can overflow a cap of 2.
    std::vector<ObjectId> extra;
    for (std::uint64_t i = 0; i < 3; ++i) {
        const ObjectId id{100 + i, 100 + i};
        swarm::ContentObject object(id, CpCode{1001}, 100 + i, 5_MB, 4);
        h.catalog.publish(std::move(object), edge::ObjectPolicy{});
        extra.push_back(id);
    }
    NetSessionClient& c = h.add_client("DE", true);
    // Rebuild with a tiny cap is impossible post-construction; emulate by a
    // dedicated client.
    {
        const net::CountryInfo* de = net::find_country("DE");
        net::HostInfo info;
        info.attach.location = net::Location{de->id, 0, de->center};
        info.attach.asn = h.world.as_graph().pick_for_country(de->id, h.rng);
        info.up = mbps(4.0);
        info.down = mbps(24.0);
        ClientConfig config;
        config.uploads_enabled = true;
        config.max_cached_objects = 2;
        h.clients.push_back(std::make_unique<NetSessionClient>(
            h.world, h.plane, h.edges, h.catalog, h.registry, Guid{h.rng.next(), h.rng.next()},
            h.world.create_host(info), config, h.rng.child("capped")));
    }
    (void)c;
    NetSessionClient& capped = *h.clients.back();
    capped.start();
    h.settle();

    for (const auto id : extra) {
        bool done = false;
        capped.begin_download(id, [&](const trace::DownloadRecord&) { done = true; });
        h.sim.run_until(h.sim.now() + sim::minutes(30.0));
        ASSERT_TRUE(done);
    }
    EXPECT_EQ(capped.cached_objects().size(), 2u) << "cap enforced";
    EXPECT_FALSE(capped.has_cached(extra[0])) << "oldest copy evicted";
    EXPECT_TRUE(capped.has_cached(extra[1]));
    EXPECT_TRUE(capped.has_cached(extra[2]));
    // The evicted copy is withdrawn from the directory.
    h.settle();
    control::DatabaseNode* dn = h.plane.local_dn(h.plane.closest_cn(capped.host())->region());
    EXPECT_EQ(dn->copies(extra[0]), 0);
    EXPECT_EQ(dn->copies(extra[2]), 1);
}

TEST(Client, BackgroundUpgradeAdoptsReleasedVersion) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", false);
    c.start();
    h.settle();
    EXPECT_EQ(c.software_version(), 80u);
    h.plane.release_client_version(81);
    h.sim.run_until(h.sim.now() + sim::minutes(20.0));
    EXPECT_EQ(c.software_version(), 81u) << "upgraded within minutes (§3.8)";
    // The next login reports the new version.
    c.stop();
    h.settle();
    c.start();
    h.settle();
    EXPECT_EQ(h.log.logins().back().software_version, 81u);
}

TEST(Client, DowngradeIsIgnored) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", false);
    c.start();
    h.settle();
    c.on_upgrade_available(12);  // older than the installed 80
    h.sim.run_until(h.sim.now() + sim::minutes(20.0));
    EXPECT_EQ(c.software_version(), 80u);
}

TEST(Client, FlushUnfinishedEmitsTerminalRecords) {
    Harness h;
    NetSessionClient& c = h.add_client("DE", false);
    c.start();
    h.settle();
    c.begin_download(h.big, nullptr);
    h.sim.run_until(h.sim.now() + sim::minutes(1.0));
    c.stop();  // pauses the download
    const auto downloads_before = h.log.downloads().size();
    c.flush_unfinished();
    ASSERT_EQ(h.log.downloads().size(), downloads_before + 1);
    EXPECT_EQ(h.log.downloads().back().outcome, trace::DownloadOutcome::aborted_by_user);
}

TEST(Client, StallWhileRequestInFlightDoesNotDoubleCountEdgeBytes) {
    // Regression for the stall/re-request byte race: when the watchdog
    // declares an edge stall while the HTTP piece request is still crossing
    // the network (send latency > stall_grace_s), the abandoned request used
    // to start a second serve flow next to the retry's flow, and both
    // deliveries landed in bytes_from_infrastructure. The attempt generation
    // counter (Download::edge_attempt) invalidates the stale request; a
    // download that both stalls and re-requests must account every
    // infrastructure byte exactly once.
    Harness h;
    NetSessionClient& c = h.add_client("FR", false);
    c.start();
    h.settle();

    // Inflate the client AS's latency so the first piece request takes ~60 s
    // one way — past the 10 s stall grace, so the 30 s watchdog declares a
    // stall while the request is still in flight.
    const Asn asn = h.world.host(c.host()).attach.asn;
    const HostId edge_host = h.edges.nearest(c.host()).host();
    const double base_s = h.world.latency(c.host(), edge_host).seconds();
    ASSERT_GT(base_s, 0.0);
    h.world.degrade_as(asn, 60.0 / base_s, 1.0, 0.0);

    trace::DownloadRecord record;
    bool done = false;
    c.begin_download(h.big, [&](const trace::DownloadRecord& r) {
        record = r;
        done = true;
    });
    // Restore normal latency right after the first watchdog tick (t+30 s):
    // the retry's request then lands quickly and streams the object while
    // the original request is still in the air (arriving at ~t+60 s,
    // mid-download — 400 MB at 24 Mbps takes over two minutes).
    h.sim.schedule_after(sim::seconds(31.0), [&] { h.world.restore_as(asn); });

    h.sim.run_until(h.sim.now() + sim::hours(1.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(record.outcome, trace::DownloadOutcome::completed);
    // The stall really happened...
    bool stalled = false;
    for (const auto& g : h.log.degradations())
        if (g.guid == c.guid() && g.kind == trace::DegradationKind::edge_stall) stalled = true;
    EXPECT_TRUE(stalled) << "scenario must reproduce the stall-while-in-flight race";
    // ...and every byte is accounted exactly once.
    EXPECT_EQ(record.bytes_from_infrastructure, 400_MB);
    EXPECT_EQ(record.bytes_from_peers, 0);
}

}  // namespace
}  // namespace netsession::peer
