// Pure-P2P (BitTorrent-style) baseline: swarm dynamics, tit-for-tat, and
// the failure modes a hybrid CDN avoids.
#include <gtest/gtest.h>

#include "baseline/pure_p2p.hpp"

namespace netsession::baseline {
namespace {

struct Harness {
    sim::Simulator sim;
    net::World world;
    swarm::ContentObject object{ObjectId{1, 1}, CpCode{1}, 1, 200_MB, 32};
    Rng rng{21};

    Harness() : world(sim, make_graph()) {}

    static net::AsGraph make_graph() {
        net::AsGraphConfig config;
        config.total_ases = 200;
        return net::AsGraph::generate(config, Rng(9));
    }

    HostId host(double up_mbps = 4.0, double down_mbps = 24.0,
                net::NatType nat = net::NatType::open) {
        const net::CountryInfo* de = net::find_country("DE");
        net::HostInfo info;
        info.attach.location = net::Location{de->id, 0, de->center};
        info.attach.asn = world.as_graph().pick_for_country(de->id, rng);
        info.attach.nat = nat;
        info.up = mbps(up_mbps);
        info.down = mbps(down_mbps);
        return world.create_host(info);
    }
};

TEST(PureP2p, LeechersCompleteFromOneSeed) {
    Harness h;
    TorrentConfig config;
    Swarm swarm(h.world, h.object, config, h.rng.child("swarm"));
    swarm.add_peer(h.host(20.0, 50.0), /*seed=*/true);
    int completed = 0;
    for (int i = 0; i < 6; ++i)
        swarm.add_peer(h.host(), false, [&](TorrentPeer&) { ++completed; });
    h.sim.run_until(sim::SimTime{} + sim::hours(12.0));
    EXPECT_EQ(completed, 6);
    EXPECT_EQ(swarm.seeds(), 7);
}

TEST(PureP2p, PeersExchangePiecesWithEachOther) {
    Harness h;
    TorrentConfig config;
    Swarm swarm(h.world, h.object, config, h.rng.child("swarm"));
    TorrentPeer& seed = swarm.add_peer(h.host(8.0, 50.0), true);
    std::vector<TorrentPeer*> leeches;
    int completed = 0;
    for (int i = 0; i < 5; ++i)
        leeches.push_back(&swarm.add_peer(h.host(), false, [&](TorrentPeer&) { ++completed; }));
    h.sim.run_until(sim::SimTime{} + sim::hours(12.0));
    ASSERT_EQ(completed, 5);
    Bytes leech_uploads = 0;
    for (const auto* p : leeches) leech_uploads += p->uploaded();
    EXPECT_GT(leech_uploads, 0) << "swarming means leechers serve each other";
    EXPECT_GT(seed.uploaded(), 0);
}

TEST(PureP2p, NoSeedMeansNobodyFinishes) {
    Harness h;
    TorrentConfig config;
    Swarm swarm(h.world, h.object, config, h.rng.child("swarm"));
    int completed = 0;
    for (int i = 0; i < 5; ++i)
        swarm.add_peer(h.host(), false, [&](TorrentPeer&) { ++completed; });
    h.sim.run_until(sim::SimTime{} + sim::hours(12.0));
    EXPECT_EQ(completed, 0) << "a pure p2p CDN has no backstop (§2.3)";
}

TEST(PureP2p, SeedDepartureStrandsTheSwarm) {
    Harness h;
    TorrentConfig config;
    Swarm swarm(h.world, h.object, config, h.rng.child("swarm"));
    TorrentPeer& seed = swarm.add_peer(h.host(20.0, 50.0), true);
    int completed = 0;
    for (int i = 0; i < 4; ++i)
        swarm.add_peer(h.host(), false, [&](TorrentPeer&) { ++completed; });
    // Kill the seed early: rarest-first means the leechers hold largely the
    // same subset and cannot finish.
    h.sim.run_until(sim::SimTime{} + sim::seconds(20.0));
    swarm.remove_peer(seed);
    h.sim.run_until(sim::SimTime{} + sim::hours(12.0));
    EXPECT_LT(completed, 4);
}

TEST(PureP2p, DepartingLeecherBreaksTransfersSafely) {
    Harness h;
    TorrentConfig config;
    Swarm swarm(h.world, h.object, config, h.rng.child("swarm"));
    swarm.add_peer(h.host(20.0, 50.0), true);
    TorrentPeer& quitter = swarm.add_peer(h.host(), false);
    int completed = 0;
    swarm.add_peer(h.host(), false, [&](TorrentPeer&) { ++completed; });
    h.sim.run_until(sim::SimTime{} + sim::minutes(2.0));
    swarm.remove_peer(quitter);
    h.sim.run_until(sim::SimTime{} + sim::hours(12.0));
    EXPECT_EQ(completed, 1) << "remaining peers keep downloading";
}

TEST(PureP2p, TitForTatFavoursReciprocators) {
    Harness h;
    TorrentConfig config;
    config.unchoke_slots = 2;
    config.optimistic_slots = 1;
    Swarm swarm(h.world, h.object, config, h.rng.child("swarm"));
    swarm.add_peer(h.host(4.0, 50.0), true);
    // One free-rider (no upload bandwidth worth anything) among contributors.
    std::optional<sim::SimTime> contributor_done, freerider_done;
    for (int i = 0; i < 4; ++i)
        swarm.add_peer(h.host(6.0, 30.0), false, [&](TorrentPeer& p) {
            if (!contributor_done) contributor_done = p.finished_at();
        });
    swarm.add_peer(h.host(0.05, 30.0), false,
                   [&](TorrentPeer& p) { freerider_done = p.finished_at(); });
    h.sim.run_until(sim::SimTime{} + sim::hours(24.0));
    ASSERT_TRUE(contributor_done.has_value());
    if (freerider_done.has_value()) {
        EXPECT_GT(freerider_done->us, contributor_done->us)
            << "choking slows down non-reciprocating peers";
    }
    // (If the free-rider never finished at all, the incentive worked even
    // more strongly; both outcomes are acceptable.)
}

TEST(PureP2p, TrackerReturnsRandomSubsetWithoutSelf) {
    Harness h;
    TorrentConfig config;
    Swarm swarm(h.world, h.object, config, h.rng.child("swarm"));
    std::vector<TorrentPeer*> peers;
    for (int i = 0; i < 10; ++i) peers.push_back(&swarm.add_peer(h.host(), i == 0));
    const auto announce = swarm.announce(*peers[0], 5);
    EXPECT_EQ(announce.size(), 5u);
    for (const auto* p : announce) EXPECT_NE(p, peers[0]);
    const auto all = swarm.announce(*peers[0], 50);
    EXPECT_EQ(all.size(), 9u) << "capped at swarm size minus self";
}

}  // namespace
}  // namespace netsession::baseline
