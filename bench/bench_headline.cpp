// §5.1 headline numbers: how well does peer assist work?
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_headline", "§5.1 headline offload numbers", args);
    const auto dataset = bench::standard_dataset(args);
    const auto h = analysis::headline_offload(dataset.log);

    std::printf("\np2p-enabled files:            %s of files (paper: 1.7%%)\n",
                format_percent(h.p2p_enabled_file_fraction).c_str());
    std::printf("bytes in p2p-enabled files:   %s of all bytes (paper: 57.4%%)\n",
                format_percent(h.p2p_enabled_byte_fraction).c_str());
    std::printf("mean peer efficiency:         %s (paper: 71.4%%)\n",
                format_percent(h.mean_peer_efficiency).c_str());
    std::printf("byte offload to peers:        %s (paper: 70-80%% headline)\n",
                format_percent(h.overall_offload).c_str());

    Bytes peer_bytes = 0, infra_bytes = 0;
    for (const auto& d : dataset.log.downloads()) {
        peer_bytes += d.bytes_from_peers;
        infra_bytes += d.bytes_from_infrastructure;
    }
    std::printf("\nAbsolute volumes this run: %s from peers, %s from the infrastructure\n",
                format_bytes(peer_bytes).c_str(), format_bytes(infra_bytes).c_str());
    std::printf("(paper trace: 895 TB of p2p content bytes)\n");
    return 0;
}
