// Extension ablation: predictive caching / pre-seeding.
//
// §5.2 notes "NetSession does not use predictive caching — i.e., a peer only
// downloads a file when it is requested by the local user", and §5.3
// speculates that finding copies nearby "could change, e.g., when NetSession
// is used to distribute large software updates". This bench quantifies that
// future-work idea: before a release goes live, the provider pushes it to a
// small fraction of upload-enabled peers; the flash crowd then starts
// against a pre-warmed swarm.
#include <algorithm>
#include <memory>

#include "accounting/accounting.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/netsession_client.hpp"
#include "workload/population.hpp"

namespace {

using namespace netsession;

struct Outcome {
    double mean_efficiency = 0;
    double median_minutes = 0;
    Bytes edge_bytes = 0;
    int completed = 0;
};

Outcome run(std::uint64_t seed, int n, double preseed_fraction) {
    sim::Simulator simulator;
    net::World world(simulator, net::AsGraph::generate(net::AsGraphConfig{}, Rng(seed)));
    edge::Catalog catalog;
    const ObjectId update{11, 11};
    {
        swarm::ContentObject object(update, CpCode{1000}, 1, 1_GB, 64);
        edge::ObjectPolicy policy;
        policy.p2p_enabled = true;
        catalog.publish(std::move(object), policy);
    }
    edge::EdgeNetwork edges(world, catalog, edge::EdgeNetworkConfig{});
    trace::TraceLog log;
    accounting::AccountingService accounting(log);
    control::ControlPlane plane(world, edges.authority(), log, accounting,
                                control::ControlPlaneConfig{}, Rng(seed).child("cp"));
    peer::PeerRegistry registry;

    Rng rng(seed);
    workload::PopulationGenerator population(workload::PopulationConfig{}, world.as_graph(),
                                             rng.child("pop"));
    std::vector<std::unique_ptr<peer::NetSessionClient>> clients;
    std::vector<peer::NetSessionClient*> uploaders;
    for (int i = 0; i < n; ++i) {
        const auto spec = population.next();
        net::HostInfo info;
        info.attach.location = spec.location;
        info.attach.asn = spec.asn;
        info.attach.nat = spec.nat;
        info.up = spec.up;
        info.down = spec.down;
        peer::ClientConfig config;
        config.uploads_enabled = rng.chance(0.35);
        clients.push_back(std::make_unique<peer::NetSessionClient>(
            world, plane, edges, catalog, registry, Guid{rng.next(), rng.next()},
            world.create_host(info), config, rng.child("c" + std::to_string(i))));
        clients.back()->start();
        if (config.uploads_enabled) uploaders.push_back(clients.back().get());
    }
    simulator.run_until(sim::SimTime{} + sim::minutes(10.0));

    // The night before the release: push the update to a fraction of the
    // upload-enabled installed base (background prefetch).
    const auto preseed_count =
        static_cast<std::size_t>(preseed_fraction * static_cast<double>(uploaders.size()));
    for (std::size_t i = 0; i < preseed_count; ++i) uploaders[i]->begin_download(update);
    simulator.run_until(sim::SimTime{} + sim::hours(8.0));

    // Release morning: everyone (who wasn't pre-seeded) grabs it in an hour.
    Outcome out;
    std::vector<double> minutes;
    double eff_sum = 0;
    for (auto& client : clients) {
        peer::NetSessionClient* c = client.get();
        if (c->has_cached(update)) continue;
        const double at_min = rng.uniform(0.0, 60.0);
        simulator.schedule_after(sim::minutes(at_min), [&, c, at_min] {
            const double started_min = simulator.now().seconds() / 60.0;
            (void)at_min;
            c->begin_download(update, [&, started_min](const trace::DownloadRecord& r) {
                if (r.outcome != trace::DownloadOutcome::completed) return;
                ++out.completed;
                eff_sum += r.peer_efficiency();
                minutes.push_back(r.end.seconds() / 60.0 - started_min);
            });
        });
    }
    simulator.run_until(sim::SimTime{} + sim::hours(20.0));

    if (out.completed > 0) out.mean_efficiency = eff_sum / out.completed;
    std::sort(minutes.begin(), minutes.end());
    if (!minutes.empty()) out.median_minutes = minutes[minutes.size() / 2];
    out.edge_bytes = edges.total_bytes_served();
    return out;
}

}  // namespace

int main() {
    const auto args = bench::bench_args();
    bench::print_banner("bench_ablation_preseeding",
                        "extension: predictive caching (§5.2/§5.3 future-work idea)", args);
    const int n = std::min(args.peers, 2500);
    std::printf("%d peers, 1 GB update, flash crowd within one hour\n\n", n);
    std::printf("%-22s %12s %14s %14s %10s\n", "pre-seeded uploaders", "efficiency",
                "median time", "edge bytes*", "completed");

    for (const double frac : {0.0, 0.05, 0.15, 0.30}) {
        const Outcome o = run(args.seed, n, frac);
        char label[32];
        std::snprintf(label, sizeof(label), "%.0f%%", frac * 100);
        std::printf("%-22s %12s %11.1f min %14s %10d\n", label,
                    format_percent(o.mean_efficiency).c_str(), o.median_minutes,
                    format_bytes(o.edge_bytes).c_str(), o.completed);
    }
    std::printf("\n(*edge bytes include the pre-seeding pushes themselves — predictive\n"
                "caching trades off-peak edge traffic for flash-crowd offload.)\n");
    return 0;
}
