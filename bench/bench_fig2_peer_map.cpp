// Fig 2: Global distribution of peers (bubble plot -> per-country counts and
// continent shares).
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig2_peer_map", "Fig 2 (global distribution of peers)", args);
    const auto dataset = bench::standard_dataset(args);
    const analysis::LoginIndex logins(dataset.log);

    const auto shares = analysis::continent_shares(logins, dataset.geodb);
    analysis::TextTable continents({"Continent", "Peers (measured)", "Paper"});
    const char* paper[net::kContinentCount] = {"~27%", "sizable", "~35%", "small", "sizable",
                                               "small"};
    for (int c = 0; c < net::kContinentCount; ++c)
        continents.add_row({std::string(net::to_string(static_cast<net::Continent>(c))),
                            format_percent(shares[static_cast<std::size_t>(c)]),
                            paper[static_cast<std::size_t>(c)]});
    std::printf("\n%s\n", continents.render().c_str());

    const auto dist = analysis::peer_distribution(logins, dataset.geodb);
    analysis::TextTable table({"Country (first connection)", "Peers", "Share"});
    int shown = 0;
    for (const auto& c : dist) {
        table.add_row({std::string(net::country(c.country).name), format_count(c.peers),
                       format_percent(c.fraction)});
        if (++shown == 20) break;
    }
    std::printf("Top-20 'bubbles':\n%s\n", table.render().c_str());
    std::printf("Countries/territories observed: %zu (paper: 239; we model the %zu largest)\n",
                dist.size(), net::countries().size());
    return 0;
}
