// §3.8: "The client software version is centrally controlled by the CDN
// infrastructure, and peers can perform automated upgrades in the background
// on demand. Most of the peer population can be upgraded to a new version
// within one hour."
//
// Releases a new client version into a live deployment and tracks adoption
// among online peers over time.
#include <algorithm>

#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_upgrade_rollout", "§3.8 (centrally controlled client version)",
                        args);

    auto config = bench::standard_config(args);
    config.peers = std::min(config.peers, 8000);
    config.behavior.warmup = sim::days(0.0);
    config.behavior.window = sim::days(4.0);
    Simulation sim(config);
    auto& simulator = sim.simulator();

    constexpr std::uint32_t kNewVersion = 81;
    const sim::SimTime release_at = sim::SimTime{} + sim::days(2.0);
    simulator.schedule_at(release_at,
                          [&sim] { sim.control_plane().release_client_version(kNewVersion); });

    struct Sample {
        double hours_after = 0;
        double online_share = 0;
        double population_share = 0;
    };
    std::vector<Sample> samples;
    for (const double h : {0.25, 0.5, 1.0, 2.0, 6.0, 12.0, 24.0, 48.0}) {
        simulator.schedule_at(release_at + sim::hours(h), [&sim, &samples, h] {
            int online = 0, online_new = 0, total_new = 0;
            const auto& clients = sim.driver().clients();
            for (const auto& c : clients) {
                if (c->software_version() == kNewVersion) ++total_new;
                if (!c->running()) continue;
                ++online;
                if (c->software_version() == kNewVersion) ++online_new;
            }
            samples.push_back(Sample{h,
                                     online == 0 ? 0.0
                                                 : static_cast<double>(online_new) / online,
                                     clients.empty() ? 0.0
                                                     : static_cast<double>(total_new) /
                                                           static_cast<double>(clients.size())});
        });
    }

    sim.run();

    std::printf("\nversion %u released at day 2.0 into %d peers\n\n", kNewVersion, config.peers);
    std::printf("%14s %18s %22s\n", "time after", "online on new ver", "whole population");
    for (const auto& s : samples)
        std::printf("%11.2f h %17s %21s\n", s.hours_after, format_percent(s.online_share).c_str(),
                    format_percent(s.population_share).c_str());
    std::printf("\nReproduction target: the online population converges within about an hour\n"
                "(push over live control connections); the long tail is peers that are\n"
                "offline and pick the version up at their next login.\n");
    return 0;
}
