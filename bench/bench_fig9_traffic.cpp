// Fig 9 + §6.1 headline numbers: inter-AS traffic distribution.
#include <algorithm>

#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig9_traffic", "Fig 9a-c + §6.1 (inter-AS traffic)", args);
    const auto dataset = bench::standard_dataset(args);
    const auto graph = bench::standard_as_graph(args);
    const auto tb = analysis::traffic_balance(dataset.log, dataset.geodb, &graph);

    std::printf("\nTotal p2p content bytes: %s across %zu ASes with traffic\n",
                format_bytes(tb.total_p2p_bytes).c_str(), tb.ases_with_traffic);
    std::printf("Intra-AS share: %s (paper: 18%%)\n",
                format_percent(tb.total_p2p_bytes == 0
                                   ? 0.0
                                   : static_cast<double>(tb.intra_as_bytes) /
                                         static_cast<double>(tb.total_p2p_bytes))
                    .c_str());

    // (a) CDF of inter-AS bytes uploaded per AS.
    std::printf("\n(a) Fraction of ASes uploading <= X inter-AS bytes\n");
    std::vector<Bytes> sent;
    sent.reserve(tb.ases.size());
    for (const auto& as : tb.ases) sent.push_back(as.sent);
    std::sort(sent.begin(), sent.end());
    const auto frac_below = [&](double x) {
        return static_cast<double>(std::upper_bound(sent.begin(), sent.end(),
                                                    static_cast<Bytes>(x)) -
                                   sent.begin()) /
               std::max<double>(1.0, static_cast<double>(sent.size()));
    };
    for (const double x : {1e3, 1e6, 1e8, 1e9, 1e10, 1e11, 1e12})
        std::printf("  <= %9s: %5.1f%% of ASes\n", format_bytes((Bytes)x).c_str(),
                    100 * frac_below(x));
    std::printf("  zero-uploaders: %.1f%% of ASes (paper: 'roughly half')\n",
                100 * frac_below(0.0));
    std::printf("  98th-percentile upload volume: %s (paper: 163 GB)\n",
                format_bytes(tb.p98_upload).c_str());
    std::printf("  top contributor: %s (paper: 34.2 TB)\n",
                sent.empty() ? "-" : format_bytes(sent.back()).c_str());

    // (b) Cumulative contribution.
    std::printf("\n(b) Cumulative share of inter-AS upload bytes\n");
    std::printf("  bottom 98%% of ASes contribute %s of the bytes (paper: 10%%)\n",
                format_percent(tb.bottom98_share).c_str());
    std::printf("  'heavy' top set responsible for 90%%: %zu ASes = %s of all ASes "
                "(paper: 394 = 2%%)\n",
                tb.heavy_count,
                format_percent(static_cast<double>(tb.heavy_count) /
                               std::max<std::size_t>(1, tb.ases.size()))
                    .c_str());

    // (c) IPs observed per AS, light vs heavy.
    std::printf("\n(c) Distinct IPs observed per AS (median)\n");
    std::vector<double> heavy_ips, light_ips;
    for (const auto& as : tb.ases)
        (as.heavy ? heavy_ips : light_ips).push_back(static_cast<double>(as.ips_observed));
    std::printf("  heavy uploaders: median %s IPs (n=%zu)\n",
                heavy_ips.empty()
                    ? "-"
                    : format_count((Bytes)analysis::percentile(heavy_ips, 50)).c_str(),
                heavy_ips.size());
    std::printf("  light uploaders: median %s IPs (n=%zu)\n",
                light_ips.empty()
                    ? "-"
                    : format_count((Bytes)analysis::percentile(light_ips, 50)).c_str(),
                light_ips.size());
    std::printf("Paper: the heavy uploaders 'simply contain a lot more peers'.\n");

    std::printf("\n§6.1 transit estimate: %s of heavy-heavy inter-AS bytes flow between\n"
                "directly connected ASes (paper: ~35%%).\n",
                format_percent(tb.heavy_direct_share).c_str());
    return 0;
}
