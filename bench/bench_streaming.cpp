// Extension bench: video streaming over NetSession (§3.4 mentions streaming
// support; the paper's trace has little video because of the client-install
// requirement). A popular 45-minute show is watched by a wave of viewers;
// peer assist is compared with edge-only delivery on the standard QoE
// metrics.
#include <algorithm>
#include <memory>

#include "accounting/accounting.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/streaming.hpp"
#include "workload/population.hpp"

namespace {

using namespace netsession;

struct QoE {
    std::vector<double> startup_s;
    std::vector<double> rebuffer_s;
    int completed = 0;
    int rebuffered = 0;
    Bytes peer_bytes = 0, edge_bytes = 0;
};

QoE run(std::uint64_t seed, int viewers, bool p2p) {
    sim::Simulator simulator;
    net::World world(simulator, net::AsGraph::generate(net::AsGraphConfig{}, Rng(seed)));
    edge::Catalog catalog;
    const ObjectId show{77, 77};
    // 45 min at 4 Mbps ~ 1.35 GB.
    {
        swarm::ContentObject object(show, CpCode{1000}, 1, static_cast<Bytes>(1.35e9), 96);
        edge::ObjectPolicy policy;
        policy.p2p_enabled = p2p;
        catalog.publish(std::move(object), policy);
    }
    edge::EdgeNetwork edges(world, catalog, edge::EdgeNetworkConfig{});
    trace::TraceLog log;
    accounting::AccountingService accounting(log);
    control::ControlPlane plane(world, edges.authority(), log, accounting,
                                control::ControlPlaneConfig{}, Rng(seed).child("cp"));
    peer::PeerRegistry registry;

    Rng rng(seed);
    workload::PopulationGenerator population(workload::PopulationConfig{}, world.as_graph(),
                                             rng.child("pop"));
    std::vector<std::unique_ptr<peer::NetSessionClient>> clients;
    std::vector<std::unique_ptr<peer::StreamingSession>> sessions;
    QoE qoe;
    for (int i = 0; i < viewers; ++i) {
        const auto spec = population.next();
        net::HostInfo info;
        info.attach.location = spec.location;
        info.attach.asn = spec.asn;
        info.attach.nat = spec.nat;
        info.up = spec.up;
        info.down = spec.down;
        peer::ClientConfig config;
        config.uploads_enabled = rng.chance(0.5);
        clients.push_back(std::make_unique<peer::NetSessionClient>(
            world, plane, edges, catalog, registry, Guid{rng.next(), rng.next()},
            world.create_host(info), config, rng.child("c" + std::to_string(i))));
        clients.back()->start();
    }
    simulator.run_until(sim::SimTime{} + sim::minutes(5.0));

    const auto& object = catalog.find(show)->object;
    for (int i = 0; i < viewers; ++i) {
        peer::NetSessionClient* c = clients[static_cast<std::size_t>(i)].get();
        peer::StreamingConfig config;
        config.bitrate_bps = 4e6;
        sessions.push_back(std::make_unique<peer::StreamingSession>(
            world, *c, object, config, [&qoe](const peer::StreamingMetrics& m) {
                if (!m.completed) return;
                ++qoe.completed;
                qoe.startup_s.push_back(m.startup_delay_s);
                qoe.rebuffer_s.push_back(m.rebuffer_time_s);
                if (m.rebuffer_events > 0) ++qoe.rebuffered;
                qoe.peer_bytes += m.bytes_from_peers;
                qoe.edge_bytes += m.bytes_from_infrastructure;
            }));
        // Viewers tune in over half an hour (a premiere).
        const double at_min = 5.0 + rng.uniform(0.0, 30.0);
        peer::StreamingSession* session = sessions.back().get();
        simulator.schedule_at(sim::SimTime{} + sim::minutes(at_min),
                              [session] { session->start(); });
    }
    simulator.run_until(sim::SimTime{} + sim::hours(8.0));
    return qoe;
}

void report(const char* label, const QoE& q, int viewers) {
    std::vector<double> startup = q.startup_s;
    std::sort(startup.begin(), startup.end());
    const double med = startup.empty() ? 0 : startup[startup.size() / 2];
    const double p90 = startup.empty() ? 0 : startup[static_cast<std::size_t>(
                                                 0.9 * (startup.size() - 1))];
    double stall = 0;
    for (const double s : q.rebuffer_s) stall += s;
    std::printf("%-18s %6d/%-5d %10.1f s %8.1f s %9.1f%% %11s %11s\n", label, q.completed,
                viewers, med, p90,
                q.completed == 0 ? 0.0 : 100.0 * q.rebuffered / q.completed,
                format_bytes(q.peer_bytes).c_str(), format_bytes(q.edge_bytes).c_str());
    (void)stall;
}

}  // namespace

int main() {
    const auto args = bench::bench_args();
    bench::print_banner("bench_streaming",
                        "extension: video streaming QoE, hybrid vs edge-only", args);
    const int viewers = std::min(args.peers, 1200);
    std::printf("%d viewers, 4 Mbps show, tune-in within 30 min\n\n", viewers);
    std::printf("%-18s %12s %12s %10s %10s %11s %11s\n", "delivery", "completed",
                "med startup", "p90", "rebuffer%", "peer bytes", "edge bytes");

    const QoE edge_only = run(args.seed, viewers, /*p2p=*/false);
    report("edge-only", edge_only, viewers);
    const QoE hybrid = run(args.seed, viewers, /*p2p=*/true);
    report("hybrid (p2p)", hybrid, viewers);

    const double saved = edge_only.edge_bytes == 0
                             ? 0.0
                             : 1.0 - static_cast<double>(hybrid.edge_bytes) /
                                         static_cast<double>(edge_only.edge_bytes);
    std::printf("\nPeer assist offloads %s of the streaming bytes at comparable startup\n"
                "delay and rebuffer rate — the LiveSky-style hybrid streaming story the\n"
                "paper cites as related work, on NetSession's own machinery.\n",
                format_percent(saved).c_str());
    return 0;
}
