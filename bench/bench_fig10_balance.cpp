// Fig 10: Per-AS uploaded vs downloaded bytes — heavy uploaders are
// balanced, light ones scatter.
#include <cmath>

#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig10_balance", "Fig 10 (per-AS upload/download balance)", args);
    const auto dataset = bench::standard_dataset(args);
    const auto tb = analysis::traffic_balance(dataset.log, dataset.geodb, nullptr);

    // Scatter summary: log-ratio |log10(sent/received)| per class.
    std::vector<double> heavy_ratio, light_ratio;
    for (const auto& as : tb.ases) {
        if (as.sent == 0 || as.received == 0) continue;
        const double r = std::fabs(std::log10(static_cast<double>(as.sent) /
                                              static_cast<double>(as.received)));
        (as.heavy ? heavy_ratio : light_ratio).push_back(r);
    }
    std::printf("\n|log10(uploaded/downloaded)| per AS — 0 means perfectly balanced\n");
    std::printf("  heavy uploaders: median %.2f, p80 %.2f (n=%zu)\n",
                analysis::percentile(heavy_ratio, 50), analysis::percentile(heavy_ratio, 80),
                heavy_ratio.size());
    std::printf("  light uploaders: median %.2f, p80 %.2f (n=%zu)\n",
                analysis::percentile(light_ratio, 50), analysis::percentile(light_ratio, 80),
                light_ratio.size());
    std::printf("Reproduction target: heavy-uploader traffic is roughly balanced (points on\n"
                "the diagonal); light ASes scatter widely (paper Fig 10).\n\n");

    analysis::TextTable table({"ASN", "Uploaded", "Downloaded", "Class"});
    int shown = 0;
    for (const auto& as : tb.ases) {
        if (shown++ >= 15) break;
        table.add_row({format_count(as.asn), format_bytes(as.sent), format_bytes(as.received),
                       as.heavy ? "heavy" : "light"});
    }
    std::printf("Top senders:\n%s\n", table.render().c_str());
    return 0;
}
