// Table 3: Observed changes to the setting that enables content uploads.
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_table3_setting_changes", "Table 3 (upload-setting changes)", args);
    const auto dataset = bench::standard_dataset(args);
    const analysis::LoginIndex logins(dataset.log);
    const auto t3 = analysis::upload_setting_changes(logins);

    const auto row = [](const char* label, const std::array<std::int64_t, 3>& v) {
        const double total = static_cast<double>(v[0] + v[1] + v[2]);
        std::vector<std::string> out{label, format_count(v[0] + v[1] + v[2])};
        for (int i = 0; i < 3; ++i)
            out.push_back(total == 0 ? "-" : format_fixed(100.0 * v[static_cast<std::size_t>(i)] /
                                                          total, 2) + "%");
        return out;
    };

    analysis::TextTable table({"Uploads initially...", "Nodes", "0 changes", "1", ">=2"});
    table.add_row(row("Disabled", t3.initially_disabled));
    table.add_row(row("Enabled", t3.initially_enabled));
    std::printf("\n%s\n", table.render().c_str());
    std::printf("Paper: Disabled 15,913,255 nodes (99.96%% / 0.03%% / 0.01%%);\n"
                "       Enabled   7,395,867 nodes (98.11%% / 1.80%% / 0.09%%).\n");

    const double enabled_share =
        static_cast<double>(t3.initially_enabled[0] + t3.initially_enabled[1] +
                            t3.initially_enabled[2]) /
        std::max<double>(1.0, static_cast<double>(
                                  t3.initially_disabled[0] + t3.initially_disabled[1] +
                                  t3.initially_disabled[2] + t3.initially_enabled[0] +
                                  t3.initially_enabled[1] + t3.initially_enabled[2]));
    std::printf("Share of peers with uploads initially enabled: %s (paper: ~31.7%%)\n",
                format_percent(enabled_share).c_str());
    return 0;
}
