// Fig 12 + §6.2: secondary-GUID graphs — cloning and re-imaging detection.
#include "analysis/guid_graph.hpp"
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig12_guid_graphs", "Fig 12 (secondary-GUID graph patterns)",
                        args);
    const auto dataset = bench::standard_dataset(args);
    const auto stats = analysis::classify_guid_graphs(dataset.log);

    std::printf("\nGraphs with >= 3 vertices: %s (paper: 17.7 million)\n",
                format_count(stats.graphs).c_str());
    std::printf("Linear chains: %s = %s (paper: 99.4%%)\n",
                format_count(stats.linear_chains).c_str(),
                format_percent(stats.linear_fraction()).c_str());
    std::printf("Trees (rolled-back installations): %s = %s (paper: 0.6%%)\n\n",
                format_count(stats.trees()).c_str(),
                format_percent(1.0 - stats.linear_fraction()).c_str());

    const double trees = std::max<double>(1.0, static_cast<double>(stats.trees()));
    analysis::TextTable table({"Tree pattern", "Count", "Share of trees", "Paper"});
    table.add_row({"long + one-vertex branch (failed update)",
                   format_count(stats.long_plus_short),
                   format_percent(static_cast<double>(stats.long_plus_short) / trees), "46.2%"});
    table.add_row({"two long branches (restored backup)",
                   format_count(stats.two_long_branches),
                   format_percent(static_cast<double>(stats.two_long_branches) / trees), "6.2%"});
    table.add_row({"several branches (re-imaging/cloning)",
                   format_count(stats.several_branches),
                   format_percent(static_cast<double>(stats.several_branches) / trees), "23.5%"});
    table.add_row({"irregular",
                   format_count(stats.irregular),
                   format_percent(static_cast<double>(stats.irregular) / trees), "~24%"});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
