// Table 4: Fraction of peers that have content uploads enabled, per customer.
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_table4_upload_enabled", "Table 4 (uploads enabled per customer)",
                        args);
    const auto dataset = bench::standard_dataset(args);
    const analysis::LoginIndex logins(dataset.log);
    const auto t4 = analysis::upload_enabled_by_provider(dataset.log, logins);

    static constexpr double kPaper[10] = {0.005, 0.20, 0.02, 0.94, 0.02,
                                          0.45,  0.47, 0.005, 0.91, 0.005};
    analysis::TextTable table({"Customer", "p2p enabled (measured)", "Paper"});
    for (int i = 0; i < 10; ++i) {
        const std::uint32_t cp = 1000 + static_cast<std::uint32_t>(i);
        char name[16];
        std::snprintf(name, sizeof(name), "%c", 'A' + i);
        const double v = t4.contains(cp) ? t4.at(cp) : 0.0;
        table.add_row({name, format_percent(v),
                       kPaper[i] < 0.01 ? "<1%" : format_percent(kPaper[i])});
    }
    std::printf("\n%s\n", table.render().c_str());
    std::printf("Shape check: D and I near the top, A/H/J near zero, B/F/G in between.\n"
                "(Our attribution assigns each peer to the provider of its first download,\n"
                "as the paper does; cross-provider downloads blur the extremes slightly.)\n");
    return 0;
}
