// Ablation: the three CDN architectures of §2 on one flash-crowd workload —
// infrastructure-only, pure p2p (BitTorrent-style), and the hybrid.
//
// N clients in several countries all want one 300 MB release within an hour.
// Who completes, how fast, and what does the infrastructure pay?
#include <algorithm>

#include "baseline/pure_p2p.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"
#include "core/simulation.hpp"

namespace {

using namespace netsession;

struct Env {
    sim::Simulator sim;
    net::World world;
    edge::Catalog catalog;
    ObjectId oid{42, 42};
    Rng rng;
    std::vector<HostId> clients;

    explicit Env(std::uint64_t seed, int n, bool p2p_enabled)
        : world(sim, net::AsGraph::generate(net::AsGraphConfig{}, Rng(seed).child("as"))),
          rng(Rng(seed).child("env")) {
        swarm::ContentObject object(oid, CpCode{1000}, 1, 300_MB, 64);
        edge::ObjectPolicy policy;
        policy.p2p_enabled = p2p_enabled;
        catalog.publish(std::move(object), policy);
        net::AsGraph& graph = world.as_graph();
        workload::PopulationGenerator pop(workload::PopulationConfig{}, graph,
                                          Rng(seed).child("pop"));
        for (int i = 0; i < n; ++i) {
            const auto spec = pop.next();
            net::HostInfo info;
            info.attach.location = spec.location;
            info.attach.asn = spec.asn;
            info.attach.nat = spec.nat;
            info.up = spec.up;
            info.down = spec.down;
            clients.push_back(world.create_host(info));
        }
    }
};

struct Outcome {
    int completed = 0;
    double median_minutes = 0;
    double p90_minutes = 0;
    Bytes infra_bytes = 0;
};

Outcome summarize(std::vector<double>& minutes, int total, Bytes infra) {
    Outcome o;
    o.completed = static_cast<int>(minutes.size());
    if (!minutes.empty()) {
        std::sort(minutes.begin(), minutes.end());
        o.median_minutes = minutes[minutes.size() / 2];
        o.p90_minutes = minutes[static_cast<std::size_t>(0.9 * (minutes.size() - 1))];
    }
    o.infra_bytes = infra;
    (void)total;
    return o;
}

/// Hybrid or infra-only: the real NetSession stack. `edge_uplink` limits the
/// aggregate serving capacity per edge server (kUnlimited = Akamai-scale).
Outcome run_netsession(std::uint64_t seed, int n, bool p2p,
                       Rate edge_uplink = net::kUnlimited) {
    Env env(seed, n, p2p);
    edge::EdgeNetworkConfig edge_config;
    edge_config.server_uplink = edge_uplink;
    edge::EdgeNetwork edges(env.world, env.catalog, edge_config);
    trace::TraceLog log;
    accounting::AccountingService accounting(log);
    control::ControlPlane plane(env.world, edges.authority(), log, accounting,
                                control::ControlPlaneConfig{}, Rng(seed).child("cp"));
    peer::PeerRegistry registry;
    std::vector<std::unique_ptr<peer::NetSessionClient>> clients;
    Rng rng = Rng(seed).child("clients");
    for (const auto host : env.clients) {
        peer::ClientConfig config;
        config.uploads_enabled = rng.chance(0.5);
        clients.push_back(std::make_unique<peer::NetSessionClient>(
            env.world, plane, edges, env.catalog, registry, Guid{rng.next(), rng.next()}, host,
            config, rng.child("c" + std::to_string(clients.size()))));
    }
    for (auto& c : clients) c->start();
    env.sim.run_until(sim::SimTime{} + sim::minutes(10.0));

    std::vector<double> minutes;
    for (auto& c : clients) {
        const double start_min = 10.0 + env.rng.uniform(0.0, 60.0);
        peer::NetSessionClient* client = c.get();
        env.sim.schedule_at(sim::SimTime{} + sim::minutes(start_min), [&, client, start_min] {
            client->begin_download(env.oid,
                                   [&, start_min](const trace::DownloadRecord& r) {
                                       if (r.outcome == trace::DownloadOutcome::completed)
                                           minutes.push_back(r.end.seconds() / 60.0 - start_min);
                                   });
        });
    }
    env.sim.run_until(sim::SimTime{} + sim::hours(12.0));
    return summarize(minutes, n, edges.total_bytes_served());
}

/// Pure p2p: one origin seed, a tracker, tit-for-tat — no edge backstop.
Outcome run_pure_p2p(std::uint64_t seed, int n) {
    Env env(seed, n, true);
    baseline::TorrentConfig config;
    const swarm::ContentObject& object = env.catalog.find(env.oid)->object;
    baseline::Swarm swarm(env.world, object, config, Rng(seed).child("swarm"));

    // The content provider runs a single seed box (decent uplink).
    const net::CountryInfo* de = net::find_country("DE");
    net::HostInfo seeder;
    seeder.attach.location = net::Location{de->id, 0, de->center};
    seeder.attach.asn = env.world.as_graph().pick_for_country(de->id, env.rng);
    seeder.up = mbps(100.0);
    seeder.down = mbps(100.0);
    swarm.add_peer(env.world.create_host(seeder), /*seed=*/true);

    std::vector<double> minutes;
    for (const auto host : env.clients) {
        const double start_min = 10.0 + env.rng.uniform(0.0, 60.0);
        env.sim.schedule_at(sim::SimTime{} + sim::minutes(start_min), [&, host, start_min] {
            swarm.add_peer(host, false, [&, start_min](baseline::TorrentPeer& p) {
                minutes.push_back(p.finished_at()->seconds() / 60.0 - start_min);
            });
        });
    }
    env.sim.run_until(sim::SimTime{} + sim::hours(12.0));
    return summarize(minutes, n, 0);
}

}  // namespace

int main() {
    const auto args = bench::bench_args();
    bench::print_banner("bench_ablation_architectures",
                        "§2 architecture comparison (flash crowd, one 300 MB release)", args);
    const int n = std::min(args.peers, 1500);
    std::printf("clients: %d, all requesting within one hour\n", n);

    const Outcome infra = run_netsession(args.seed, n, /*p2p=*/false);
    const Outcome hybrid = run_netsession(args.seed, n, /*p2p=*/true);
    const Outcome pure = run_pure_p2p(args.seed, n);
    // An under-provisioned infrastructure (150 Mbps per edge server): the
    // regime where §2.3's "peers provide resources and scalability" bites.
    const Rate small_edge = mbps(150.0);
    const Outcome infra_tight = run_netsession(args.seed, n, false, small_edge);
    const Outcome hybrid_tight = run_netsession(args.seed, n, true, small_edge);

    std::printf("\n%-28s %10s %14s %12s %14s\n", "architecture", "completed", "median time",
                "p90 time", "edge bytes");
    const auto row = [n](const char* name, const Outcome& o) {
        std::printf("%-28s %6d/%-4d %11.1f min %9.1f min %14s\n", name, o.completed, n,
                    o.median_minutes, o.p90_minutes, format_bytes(o.infra_bytes).c_str());
    };
    row("infrastructure-only", infra);
    row("hybrid (NetSession)", hybrid);
    row("pure p2p (tracker)", pure);
    row("infra-only, 150Mbps edges", infra_tight);
    row("hybrid, 150Mbps edges", hybrid_tight);

    const double saved = infra.infra_bytes == 0
                             ? 0.0
                             : 1.0 - static_cast<double>(hybrid.infra_bytes) /
                                         static_cast<double>(infra.infra_bytes);
    std::printf("\nHybrid cuts edge bytes by %s vs infrastructure-only at comparable speed\n"
                "and reliability; pure p2p needs no infrastructure but is slower to start\n"
                "and every completion hinges on the one seed (§2.3/§2.4 tradeoffs).\n",
                netsession::format_percent(saved).c_str());
    return 0;
}
