// Fig 11: Traffic balance on AS-to-AS links (directly connected heavy
// uploaders).
#include <cmath>

#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig11_pairwise", "Fig 11 (pairwise AS<->AS traffic balance)",
                        args);
    const auto dataset = bench::standard_dataset(args);
    const auto graph = bench::standard_as_graph(args);
    const auto tb = analysis::traffic_balance(dataset.log, dataset.geodb, &graph);

    std::vector<double> ratios;
    analysis::TextTable table({"AS A", "AS B", "A->B", "B->A"});
    int shown = 0;
    for (const auto& [a, b, fwd, rev] : tb.heavy_pairs) {
        if (fwd > 0 && rev > 0)
            ratios.push_back(std::fabs(
                std::log10(static_cast<double>(fwd) / static_cast<double>(rev))));
        if (shown++ < 20)
            table.add_row({format_count(a), format_count(b), format_bytes(fwd),
                           format_bytes(rev)});
    }
    std::printf("\n%zu directly-connected heavy-uploader pairs with traffic\n",
                tb.heavy_pairs.size());
    std::printf("%s\n", table.render().c_str());
    std::printf("|log10(A->B / B->A)|: median %.2f, p80 %.2f over %zu bidirectional pairs\n",
                analysis::percentile(ratios, 50), analysis::percentile(ratios, 80),
                ratios.size());
    std::printf("Reproduction target (paper): pairwise flows between heavy contributors are\n"
                "roughly even, so the p2p traffic does not tilt settlement-free peering.\n");
    return 0;
}
