// Table 2: Global distribution of downloads for the ten largest content
// providers.
#include <algorithm>

#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_table2_providers", "Table 2 (downloads per region per customer)",
                        args);
    const auto dataset = bench::standard_dataset(args);
    const analysis::LoginIndex logins(dataset.log);
    const auto shares = analysis::downloads_by_region(dataset.log, logins, dataset.geodb);

    // Rank providers by download count to pick "the ten largest".
    std::map<std::uint32_t, std::int64_t> counts;
    for (const auto& d : dataset.log.downloads()) ++counts[d.cp_code.value];
    std::vector<std::pair<std::int64_t, std::uint32_t>> ranked;
    for (const auto& [cp, n] : counts) ranked.emplace_back(n, cp);
    std::sort(ranked.rbegin(), ranked.rend());

    std::vector<std::string> headers{"Customer"};
    for (int r = 0; r < analysis::kReportRegions; ++r)
        headers.emplace_back(analysis::to_string(static_cast<analysis::ReportRegion>(r)));
    analysis::TextTable table(std::move(headers));

    std::array<double, analysis::kReportRegions> all{};
    std::int64_t all_n = 0;
    const auto add_row = [&](const std::string& name, std::uint32_t cp) {
        if (!shares.contains(cp)) return;
        std::vector<std::string> row{name};
        for (const double v : shares.at(cp))
            row.push_back(v < 0.005 ? "-" : format_percent(v));
        table.add_row(std::move(row));
    };
    int shown = 0;
    for (const auto& [n, cp] : ranked) {
        if (cp >= 2000) continue;  // minor customers are not in the paper's table
        char name[32];
        std::snprintf(name, sizeof(name), "Customer %c", 'A' + static_cast<int>(cp - 1000));
        add_row(name, cp);
        if (++shown == 10) break;
    }
    for (const auto& d : dataset.log.downloads()) {
        const auto geo = logins.locate(d.guid, d.start, dataset.geodb);
        if (!geo) continue;
        ++all[static_cast<std::size_t>(analysis::report_region(*geo))];
        ++all_n;
    }
    std::vector<std::string> all_row{"All customers"};
    for (const double v : all)
        all_row.push_back(format_percent(all_n == 0 ? 0.0 : v / static_cast<double>(all_n)));
    table.add_row(std::move(all_row));

    std::printf("\n%s\n", table.render().c_str());
    std::printf("Paper row shapes to compare: B is Asia-heavy (61%% Asia other), F is 100%%\n"
                "Europe, J is US-heavy (42%%/24%% US East/West), Europe carries ~46%% overall.\n");
    return 0;
}
