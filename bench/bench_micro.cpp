// Hot-path microbenchmarks (google-benchmark): the primitives the simulator
// leans on at scale.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstdlib>

#include "analysis/guid_graph.hpp"
#include "analysis/pipeline.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "control/directory.hpp"
#include "net/flow.hpp"
#include "sim/simulator.hpp"
#include "swarm/picker.hpp"
#include "trace/serialize.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace netsession;

void BM_Sha256_1MiB(benchmark::State& state) {
    const std::string data(1 << 20, 'x');
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha256::hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_Sha256_1MiB);

void BM_HmacToken(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(hmac_sha256("edge-secret", "guid|object|expiry"));
    }
}
BENCHMARK(BM_HmacToken);

void BM_RngNext(benchmark::State& state) {
    Rng rng(1);
    for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfSample(benchmark::State& state) {
    workload::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 1.1);
    Rng rng(2);
    for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

void BM_EventQueue(benchmark::State& state) {
    for (auto _ : state) {
        sim::Simulator sim;
        Rng rng(3);
        for (int i = 0; i < 1000; ++i)
            sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(rng.below(1'000'000))}, [] {});
        sim.run();
        benchmark::DoNotOptimize(sim.events_dispatched());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_EventChurn(benchmark::State& state) {
    // The engine's worst case: a sustained schedule/cancel/dispatch mix, the
    // pattern flow rescheduling produces at scale. One iteration churns 1M
    // scheduled events with ~25% cancelled before they fire.
    constexpr int kOps = 1'000'000;
    for (auto _ : state) {
        sim::Simulator sim;
        Rng rng(11);
        std::array<sim::EventHandle, 4096> ring{};
        std::size_t head = 0;
        std::int64_t t = 0;
        std::uint64_t fired = 0;
        for (int i = 0; i < kOps; ++i) {
            const std::uint64_t r = rng.next();
            if ((r & 3u) == 0 && ring[head].valid()) sim.cancel(ring[head]);
            ring[head] = sim.schedule_at(sim::SimTime{t + static_cast<std::int64_t>(r % 10'000)},
                                         [&fired] { ++fired; });
            head = (head + 1) % ring.size();
            if ((i & 1023) == 0) {
                t += 1'000;
                sim.run_until(sim::SimTime{t});
            }
        }
        sim.run();
        benchmark::DoNotOptimize(fired);
        benchmark::DoNotOptimize(sim.events_dispatched());
    }
    state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_EventChurn);

void BM_FlowLifecycle(benchmark::State& state) {
    // Flow start/complete/cancel churn on a random mesh of constrained
    // hosts — exercises adjacency maintenance and the water-fill refills.
    constexpr int kFlows = 10'000;
    for (auto _ : state) {
        sim::Simulator sim;
        net::FlowNetwork net(sim);
        Rng rng(13);
        std::vector<HostId> hosts;
        for (int i = 0; i < 200; ++i)
            hosts.push_back(net.add_host(rng.uniform(1e4, 1e6), rng.uniform(1e4, 1e6)));
        std::vector<net::FlowId> live;
        int done = 0;
        for (int i = 0; i < kFlows; ++i) {
            const auto s = rng.below(hosts.size());
            auto d = rng.below(hosts.size());
            if (d == s) d = (d + 1) % hosts.size();
            live.push_back(net.start_flow(hosts[s], hosts[d],
                                          static_cast<Bytes>(rng.range(10'000, 500'000)),
                                          net::kUnlimited, [&](net::FlowId) { ++done; }));
            if ((i & 3) == 0 && !live.empty()) {
                const auto k = rng.below(live.size());
                net.cancel_flow(live[k]);
                live[k] = live.back();
                live.pop_back();
            }
            if ((i & 63) == 0) sim.run_until(sim.now() + sim::seconds(1.0));
        }
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * kFlows);
}
BENCHMARK(BM_FlowLifecycle);

void BM_DirectorySelect(benchmark::State& state) {
    control::Directory dir;
    const ObjectId object{1, 1};
    Rng rng(4);
    const auto n = state.range(0);
    for (std::int64_t i = 1; i <= n; ++i) {
        control::PeerDescriptor d;
        d.guid = Guid{static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i)};
        d.host = HostId{static_cast<std::uint32_t>(i)};
        d.asn = Asn{static_cast<std::uint32_t>(10 + i % 50)};
        d.country = CountryId{static_cast<std::uint16_t>(i % 20)};
        d.continent = static_cast<net::Continent>(i % 6);
        d.nat = static_cast<net::NatType>(rng.below(net::kNatTypeCount));
        dir.add(object, d);
    }
    control::PeerDescriptor requester;
    requester.guid = Guid{999999, 999999};
    requester.asn = Asn{12};
    requester.country = CountryId{2};
    requester.continent = net::Continent::europe;
    requester.nat = net::NatType::full_cone;
    const control::SelectionPolicy policy;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir.select(object, requester, 40, policy, rng));
    }
}
BENCHMARK(BM_DirectorySelect)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FlowChurn(benchmark::State& state) {
    // Start/finish flows against a hub with many spokes — the reallocation
    // hot path.
    for (auto _ : state) {
        sim::Simulator sim;
        net::FlowNetwork net(sim);
        const HostId hub = net.add_host(1e6, 1e6);
        std::vector<HostId> spokes;
        for (int i = 0; i < 50; ++i) spokes.push_back(net.add_host(1e5, 1e5));
        int done = 0;
        for (int i = 0; i < 200; ++i)
            net.start_flow(hub, spokes[static_cast<std::size_t>(i) % spokes.size()], 50000,
                           net::kUnlimited, [&](net::FlowId) { ++done; });
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_FlowChurn);

void BM_PiecePick(benchmark::State& state) {
    swarm::PiecePicker picker(128);
    swarm::PieceMap local(128);
    const auto remote = swarm::PieceMap::full(128);
    Rng rng(5);
    for (int i = 0; i < 64; ++i) local.set(static_cast<swarm::PieceIndex>(i * 2));
    for (auto _ : state) benchmark::DoNotOptimize(picker.pick_from_peer(local, remote, rng));
}
BENCHMARK(BM_PiecePick);

void BM_GuidGraphClassify(benchmark::State& state) {
    // 200 installations x 30 login reports each.
    trace::TraceLog log;
    Rng rng(7);
    for (int g = 0; g < 200; ++g) {
        const Guid guid{static_cast<std::uint64_t>(g + 1), 1};
        for (int start = 1; start <= 30; ++start) {
            trace::LoginRecord r;
            r.guid = guid;
            for (int i = 0; i < 5 && start - i >= 1; ++i)
                r.secondary_guids[static_cast<std::size_t>(i)] =
                    SecondaryGuid{static_cast<std::uint64_t>(g + 1),
                                  static_cast<std::uint64_t>(start - i)};
            log.add(r);
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::classify_guid_graphs(log));
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_GuidGraphClassify);

/// A dense synthetic dataset exercising every measurement: logins with
/// secondary-GUID chains, a zipf-ish object mix of downloads, p2p transfers
/// between geolocated peers.
trace::Dataset synthetic_analysis_dataset(int peers, int downloads_per_peer) {
    trace::Dataset dataset;
    Rng rng(17);
    std::vector<net::IpAddr> ips;
    ips.reserve(static_cast<std::size_t>(peers));
    for (int p = 0; p < peers; ++p) {
        const auto u = static_cast<std::uint64_t>(p + 1);
        const Guid guid{u, 77};
        const net::IpAddr ip{0x0A000000u + static_cast<std::uint32_t>(u)};
        ips.push_back(ip);

        net::GeoRecord geo;
        geo.location.country = CountryId{static_cast<std::uint16_t>(p % 40)};
        geo.location.point = {rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)};
        geo.asn = Asn{static_cast<std::uint32_t>(100 + p % 64)};
        dataset.geodb.register_ip(ip, geo);

        trace::LoginRecord login;
        login.guid = guid;
        login.ip = ip;
        login.time = sim::SimTime{static_cast<std::int64_t>(p) * 1000};
        login.uploads_enabled = (p % 3) != 0;
        for (std::size_t i = 0; i < 5; ++i)
            login.secondary_guids[i] = SecondaryGuid{u, 5 - i};
        dataset.log.add(login);

        for (int d = 0; d < downloads_per_peer; ++d) {
            trace::DownloadRecord rec;
            rec.guid = guid;
            rec.object = ObjectId{1 + rng.next() % 500, 1};
            rec.url_hash = rec.object.hi;
            rec.object_size = static_cast<Bytes>(rng.range(1'000'000, 1'000'000'000));
            rec.start = login.time;
            rec.end = rec.start + sim::seconds(rng.uniform(10.0, 3600.0));
            rec.p2p_enabled = (d % 4) != 0;
            rec.bytes_from_peers = rec.p2p_enabled ? rec.object_size / 2 : 0;
            rec.bytes_from_infrastructure = rec.object_size - rec.bytes_from_peers;
            rec.cp_code = CpCode{static_cast<std::uint32_t>(1 + d % 3)};
            rec.peers_initially_returned = static_cast<int>(rng.below(41));
            rec.outcome = trace::DownloadOutcome::completed;
            dataset.log.add(rec);

            if (rec.p2p_enabled && p > 0) {
                trace::TransferRecord t;
                t.object = rec.object;
                t.from_guid = Guid{1 + rng.next() % u, 77};
                t.to_guid = guid;
                t.from_ip = ips[static_cast<std::size_t>(t.from_guid.hi - 1)];
                t.to_ip = ip;
                t.bytes = rec.bytes_from_peers;
                t.time = rec.end;
                dataset.log.add(t);

                trace::DnRegistrationRecord reg;
                reg.object = rec.object;
                reg.guid = guid;
                reg.time = rec.end;
                dataset.log.add(reg);
            }
        }
    }
    return dataset;
}

void BM_MeasurementPipeline(benchmark::State& state) {
    // The full §4-§6 measurement pipeline over a multi-chunk dataset — the
    // pass the parallel runtime (common/parallel.hpp) exists to speed up.
    const trace::Dataset dataset = synthetic_analysis_dataset(2000, 10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::fingerprint(analysis::run_full_pipeline(dataset)));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dataset.log.total_entries()));
}
BENCHMARK(BM_MeasurementPipeline);

void BM_DatasetLoad(benchmark::State& state) {
    // Cached-dataset load: arg 0 = zero-copy mmap path, arg 1 = buffered
    // fread fallback (NS_TRACE_NO_MMAP) — the ratio is the headline's
    // load_speedup.
    const trace::Dataset dataset = synthetic_analysis_dataset(2000, 10);
    const std::string path = "/tmp/bench_dataset_load.nstrace";
    if (!trace::save_dataset(dataset, path)) {
        state.SkipWithError("save_dataset failed");
        return;
    }
    if (state.range(0) != 0) setenv("NS_TRACE_NO_MMAP", "1", 1);
    for (auto _ : state) {
        trace::Dataset loaded;
        benchmark::DoNotOptimize(trace::load_dataset(loaded, path));
        benchmark::DoNotOptimize(loaded.log.total_entries());
    }
    unsetenv("NS_TRACE_NO_MMAP");
    std::remove(path.c_str());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dataset.log.total_entries()));
}
BENCHMARK(BM_DatasetLoad)->Arg(0)->Arg(1);

void BM_TraceSerializeRoundTrip(benchmark::State& state) {
    trace::Dataset dataset;
    Rng rng(9);
    for (int i = 0; i < 5000; ++i) {
        trace::DownloadRecord d;
        d.guid = Guid{rng.next(), rng.next()};
        d.object = ObjectId{rng.next(), rng.next()};
        d.object_size = 100_MB;
        dataset.log.add(d);
    }
    const std::string path = "/tmp/bench_roundtrip.nstrace";
    for (auto _ : state) {
        benchmark::DoNotOptimize(trace::save_dataset(dataset, path));
        trace::Dataset loaded;
        benchmark::DoNotOptimize(trace::load_dataset(loaded, path));
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_TraceSerializeRoundTrip);

}  // namespace

BENCHMARK_MAIN();
