// Fig 3: Overall workload characteristics — (a) request distribution by
// object size, (b) content popularity power law, (c) diurnal bytes/hour.
#include <cmath>

#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig3_workload", "Fig 3 (workload characteristics)", args);
    const auto dataset = bench::standard_dataset(args);
    const analysis::LoginIndex logins(dataset.log);
    const auto w = analysis::workload_characteristics(dataset.log, logins, dataset.geodb);

    std::printf("\n(a) Request CDF by object size [fraction of requests <= size]\n");
    std::printf("%12s  %12s  %12s  %12s\n", "size", "infra-only", "all", "peer-assist");
    for (const double gb : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0}) {
        const double bytes = gb * 1e9;
        std::printf("%9.2f GB  %11.1f%%  %11.1f%%  %11.1f%%\n", gb,
                    100 * w.size_infra_only.at(bytes), 100 * w.size_all.at(bytes),
                    100 * w.size_peer_assisted.at(bytes));
    }
    const double p2p_over_500mb = 1.0 - w.size_peer_assisted.at(500e6);
    std::printf("Peer-assisted requests for objects > 500 MB: %s (paper: 82%%)\n",
                format_percent(p2p_over_500mb).c_str());

    std::printf("\n(b) Content popularity (downloads vs rank)\n");
    for (const std::size_t rank : {1u, 3u, 10u, 30u, 100u, 300u, 1000u, 3000u}) {
        if (rank > w.popularity.size()) break;
        std::printf("  rank %5zu: %8.0f downloads\n", rank, w.popularity[rank - 1].second);
    }
    std::printf("  log-log slope: %.2f over %zu files (paper: 'nearly ubiquitous power law')\n",
                w.popularity_fit.slope, w.popularity_fit.n);

    std::printf("\n(c) Bytes served over time (TB/hour averaged per local hour of day)\n");
    std::printf("%7s  %14s  %14s\n", "hour", "GMT series", "local series");
    std::array<double, 24> gmt{}, local{};
    std::array<int, 24> n{};
    for (std::size_t h = 0; h < w.bytes_per_hour_gmt.size(); ++h) {
        gmt[h % 24] += w.bytes_per_hour_gmt[h];
        local[h % 24] += w.bytes_per_hour_local[h];
        ++n[h % 24];
    }
    double local_peak = 0, local_trough = 1e30;
    for (int h = 0; h < 24; ++h) {
        const double g = n[h] ? gmt[h] / n[h] : 0;
        const double l = n[h] ? local[h] / n[h] : 0;
        local_peak = std::max(local_peak, l);
        local_trough = std::min(local_trough, l);
        std::printf("%5d:00  %11s/h  %11s/h\n", h, format_bytes((Bytes)g).c_str(),
                    format_bytes((Bytes)l).c_str());
    }
    std::printf("Local-time peak/trough ratio: %.1fx — clear diurnal pattern; the GMT series\n"
                "is flatter because time zones smear it (paper Fig 3c shows the same).\n",
                local_trough > 0 ? local_peak / local_trough : 0.0);
    return 0;
}
