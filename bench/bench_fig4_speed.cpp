// Fig 4: Edge-only vs peer-assisted download speed in the two largest ASes.
#include "bench/common.hpp"
#include "common/format.hpp"

namespace {
void print_cdf_pair(const char* label, const netsession::analysis::Cdf& edge,
                    const netsession::analysis::Cdf& p2p) {
    std::printf("\n%s (n=%zu edge-only, n=%zu >=50%% p2p)\n", label, edge.size(), p2p.size());
    std::printf("%12s  %12s  %12s\n", "speed", "edge-only", ">50% p2p");
    for (const double mbps : {0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        std::printf("%9.1f Mb  %11.1f%%  %11.1f%%\n", mbps,
                    edge.empty() ? 0.0 : 100 * edge.at(mbps),
                    p2p.empty() ? 0.0 : 100 * p2p.at(mbps));
    }
    if (!edge.empty() && !p2p.empty())
        std::printf("medians: edge-only %.2f Mbps, >50%% p2p %.2f Mbps\n", edge.quantile(0.5),
                    p2p.quantile(0.5));
}
}  // namespace

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig4_speed", "Fig 4 (download speed, edge-only vs peer-assisted)",
                        args);
    const auto dataset = bench::standard_dataset(args);
    const analysis::LoginIndex logins(dataset.log);
    const auto cmp = analysis::speed_comparison(dataset.log, logins, dataset.geodb);

    char label[64];
    std::snprintf(label, sizeof(label), "AS X (asn %u, most downloads)", cmp.as_x);
    print_cdf_pair(label, cmp.edge_only_x, cmp.p2p_x);
    std::snprintf(label, sizeof(label), "AS Y (asn %u, runner-up)", cmp.as_y);
    print_cdf_pair(label, cmp.edge_only_y, cmp.p2p_y);

    std::printf("\nExpected shape (paper): multi-Mbps speeds in both classes; peer-assisted\n"
                "somewhat slower, with the largest gap in the fastest (most asymmetric)\n"
                "networks.\n");
    return 0;
}
