// Fig 7 + §5.2: download outcomes, and pause/termination rate by file size.
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig7_pause_rate", "Fig 7 + §5.2 (outcomes, pause rates by size)",
                        args);
    const auto dataset = bench::standard_dataset(args);
    const auto stats = analysis::outcome_stats(dataset.log);

    analysis::TextTable outcomes(
        {"Class", "n", "Completed", "Failed(sys)", "Failed(other)", "Aborted/paused"});
    const auto add = [&](const char* name, const analysis::OutcomeStats::Class& c) {
        outcomes.add_row({name, format_count(c.n), format_percent(c.completed),
                          format_percent(c.failed_system), format_percent(c.failed_other),
                          format_percent(c.aborted)});
    };
    add("Infrastructure-only", stats.infra_only);
    add("Peer-assisted", stats.peer_assisted);
    add("All", stats.all);
    std::printf("\n%s\n", outcomes.render().c_str());
    std::printf("Paper: 94%% vs 92%% completion; system failures 0.1%% vs 0.2%%; pauses 3%% vs "
                "8%%.\n\n");

    static const char* kBuckets[4] = {"<10MB", "10-100MB", "100MB-1GB", ">1GB"};
    static const char* kClasses[3] = {"Infrastructure-only", "Peer-assisted", "All"};
    analysis::TextTable pause({"File size", kClasses[0], kClasses[1], kClasses[2], "downloads"});
    for (int b = 0; b < 4; ++b) {
        std::vector<std::string> row{kBuckets[b]};
        for (int c = 0; c < 3; ++c)
            row.push_back(format_percent(
                stats.pause_rate_by_size[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)]));
        row.push_back(format_count(
            stats.downloads_by_size[2][static_cast<std::size_t>(b)]));
        pause.add_row(std::move(row));
    }
    std::printf("Pause/termination rate by size (Fig 7):\n%s\n", pause.render().c_str());
    std::printf("Reproduction target: the rate rises strongly with file size (the paper\n"
                "reaches ~25%% for >1GB), which explains the apparent reliability gap of\n"
                "peer-assisted downloads — they are simply bigger.\n");
    return 0;
}
