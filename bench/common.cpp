#include "bench/common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <filesystem>

#include "analysis/measurement.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/recovery.hpp"
#include "common/parallel.hpp"
#include "core/scenario_io.hpp"
#include "fault/campaign.hpp"
#include "obs/export.hpp"
#include "obs/process_memory.hpp"

namespace netsession::bench {

namespace {
double env_double(const char* name, double fallback) {
    const char* v = std::getenv(name);
    return v == nullptr ? fallback : std::atof(v);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The "analysis" headline section: full-pipeline wall clock at the
/// configured thread count vs forced single-thread (with the fingerprint
/// equality check that guards the determinism contract), cached-dataset load
/// time on the mmap path vs the buffered fallback, and the parallel
/// runtime's counters. This is where the ISSUE's >=3x pipeline / >=2x load
/// acceptance numbers get recorded.
std::string analysis_section_json(const trace::Dataset& dataset, const char* cache_path) {
    const int threads = parallel::thread_count();

    auto t0 = std::chrono::steady_clock::now();
    const analysis::PipelineResult parallel_result = analysis::run_full_pipeline(dataset);
    const double pipeline_seconds = seconds_since(t0);
    const std::uint64_t parallel_fp = analysis::fingerprint(parallel_result);

    parallel::set_thread_count(1);
    t0 = std::chrono::steady_clock::now();
    const analysis::PipelineResult serial_result = analysis::run_full_pipeline(dataset);
    const double serial_seconds = seconds_since(t0);
    const std::uint64_t serial_fp = analysis::fingerprint(serial_result);
    parallel::set_thread_count(threads);

    double load_mmap_seconds = 0.0;
    double load_buffered_seconds = 0.0;
    if (cache_path != nullptr) {
        trace::Dataset scratch;
        t0 = std::chrono::steady_clock::now();
        if (trace::load_dataset(scratch, cache_path)) load_mmap_seconds = seconds_since(t0);
        setenv("NS_TRACE_NO_MMAP", "1", 1);
        trace::Dataset scratch2;
        t0 = std::chrono::steady_clock::now();
        if (trace::load_dataset(scratch2, cache_path)) load_buffered_seconds = seconds_since(t0);
        unsetenv("NS_TRACE_NO_MMAP");
    }

    const parallel::StatsSnapshot st = parallel::stats();
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "    \"threads\": %d,\n"
        "    \"pipeline_seconds\": %.3f,\n"
        "    \"pipeline_seconds_1thread\": %.3f,\n"
        "    \"pipeline_speedup\": %.2f,\n"
        "    \"fingerprint\": \"%016llx\",\n"
        "    \"fingerprint_match\": %s,\n"
        "    \"load_seconds_mmap\": %.4f,\n"
        "    \"load_seconds_buffered\": %.4f,\n"
        "    \"load_speedup\": %.2f,\n"
        "    \"parallel\": {\"jobs\": %llu, \"inline_jobs\": %llu, \"chunks\": %llu, "
        "\"chunks_stolen\": %llu, \"merges\": %llu}\n"
        "  }",
        threads, pipeline_seconds, serial_seconds,
        pipeline_seconds > 0.0 ? serial_seconds / pipeline_seconds : 0.0,
        static_cast<unsigned long long>(parallel_fp),
        parallel_fp == serial_fp ? "true" : "false", load_mmap_seconds, load_buffered_seconds,
        load_mmap_seconds > 0.0 ? load_buffered_seconds / load_mmap_seconds : 0.0,
        static_cast<unsigned long long>(st.jobs), static_cast<unsigned long long>(st.inline_jobs),
        static_cast<unsigned long long>(st.chunks),
        static_cast<unsigned long long>(st.chunks_stolen),
        static_cast<unsigned long long>(st.merges));
    return buf;
}

/// The "scale" headline section: a scale LADDER. NS_BENCH_SCALE names one or
/// more scenario files (':'- or ','-separated; tools/ci.sh points it at
/// 40k:200k:1M) and each is run fresh, smallest first, emitting one JSON row
/// per rung: wall-clock, events/sec, peak RSS, amortised bytes-per-peer, the
/// flow-pool footprint, and the hibernation cold store. Peak RSS is a
/// process-wide high-water mark — it never goes down — so rungs must be
/// listed in ascending size for per-rung numbers to be attributable; the
/// runner keeps whatever order the caller gave and records it as-is.
/// Empty string when the env var is unset — the section is omitted.
std::string scale_section_json() {
    const char* spec = std::getenv("NS_BENCH_SCALE");
    if (spec == nullptr) return "";
    std::vector<std::string> scenarios;
    std::string cur;
    for (const char* p = spec;; ++p) {
        if (*p == ':' || *p == ',' || *p == '\0') {
            if (!cur.empty()) scenarios.push_back(cur);
            cur.clear();
            if (*p == '\0') break;
        } else {
            cur += *p;
        }
    }
    if (scenarios.empty()) return "";

    std::string rows;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const std::string& scenario = scenarios[i];
        auto loaded = load_scenario(scenario.c_str());
        if (!loaded) {
            std::fprintf(stderr, "[scenario] NS_BENCH_SCALE: %s\n",
                         loaded.error().message.c_str());
            continue;
        }
        std::printf("[scenario] scale rung %zu/%zu: %s (%d peers)...\n", i + 1,
                    scenarios.size(), scenario.c_str(), loaded.value().peers);
        std::fflush(stdout);
        const int peers = loaded.value().peers;
        const auto t0 = std::chrono::steady_clock::now();
        Simulation sim(std::move(loaded.value()));
        sim.run();
        const double wall_seconds = seconds_since(t0);
        const Simulation::PerfStats perf = sim.perf_stats();
        const obs::ProcessMemory mem = obs::read_process_memory();
        const arena::PoolStats flow_pool = sim.world().flows().pool_stats();
        const peer::ColdStore& cold = sim.registry().cold();
        const double bytes_per_peer =
            peers > 0 ? static_cast<double>(mem.peak_rss_bytes) / peers : 0.0;
        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "%s\n"
            "    {\"scenario\": \"%s\",\n"
            "     \"peers\": %d,\n"
            "     \"wall_seconds\": %.3f,\n"
            "     \"events_dispatched\": %llu,\n"
            "     \"events_per_second\": %.0f,\n"
            "     \"peak_rss_bytes\": %zu,\n"
            "     \"bytes_per_peer\": %.0f,\n"
            "     \"flow_pool\": {\"slots\": %zu, \"peak_live\": %zu, "
            "\"bytes_reserved\": %zu},\n"
            "     \"cold_store\": {\"records\": %zu, \"bytes_live\": %zu, "
            "\"bytes_reserved\": %zu}}",
            rows.empty() ? "" : ",", scenario.c_str(), peers, wall_seconds,
            static_cast<unsigned long long>(perf.sim.dispatched),
            wall_seconds > 0.0 ? static_cast<double>(perf.sim.dispatched) / wall_seconds : 0.0,
            mem.peak_rss_bytes, bytes_per_peer, flow_pool.slots, flow_pool.peak_live,
            flow_pool.bytes_reserved, cold.records(), cold.bytes_live(),
            cold.bytes_reserved());
        rows += buf;
        std::printf(
            "[scenario] scale rung done: %.1fs wall, peak RSS %.0f MiB, %.0f B/peer\n",
            wall_seconds, static_cast<double>(mem.peak_rss_bytes) / (1024.0 * 1024.0),
            bytes_per_peer);
    }
    if (rows.empty()) return "";
    return "[" + rows + "\n  ]";
}

/// The "sim_parallel" headline section: how the region-sharded simulation
/// core (docs/PARALLELISM.md "The sharded simulation core") scales.
///
/// Two measurements:
///   - "engine": a lane-isolated synthetic workload (per-lane event chains
///     with CPU-bound callbacks) dispatched serially vs on the pool — the
///     engine-level scaling ceiling, independent of the deployment's shared
///     control plane. This is where the windowed-dispatch speedup is
///     recorded; it is bounded by "pool_threads" (the pool's worker count,
///     itself capped by the machine's core count), so read the speedup
///     against that field — a 1-core container honestly reports ~1.0x.
///   - "deployment": the scenario named by NS_BENCH_SIM_PARALLEL (tools
///     point it at scenarios/standard_200k.ini) run at shards=1 and
///     shards=4 — wall clock, events/sec, window/stall/cross-message
///     counters. The deployment dispatches lanes serially (its layers share
///     the control plane), so this records the real end-to-end effect of
///     windowed execution + the parallel flow-refill barrier, not the
///     synthetic ceiling. Omitted when the env var is unset.
std::string sim_parallel_section_json() {
    // --- engine scaling: serial vs pool dispatch, identical results -------
    const int lanes = 8;
    constexpr int kChains = 64;       // per lane
    constexpr int kChainEvents = 400;  // events per chain
    const auto run_engine = [&](bool pool) {
        sim::Simulator engine;
        engine.configure_shards(lanes, sim::milliseconds(1.0));
        engine.set_parallel_dispatch(pool);
        std::vector<std::uint64_t> acc(static_cast<std::size_t>(lanes), 0);
        struct Chain {
            sim::Simulator* engine;
            std::uint64_t* acc;
            int left;
            void fire() {
                // ~4us of register work per event: enough that dispatch
                // overhead does not dominate, small enough to stay honest.
                std::uint64_t x = *acc + 0x9E3779B97F4A7C15ULL;
                for (int i = 0; i < 4000; ++i) {
                    x ^= x >> 33;
                    x *= 0xFF51AFD7ED558CCDULL;
                }
                *acc = x;
                if (--left > 0)
                    engine->schedule_after(sim::milliseconds(2.0), [this] { fire(); });
            }
        };
        std::vector<Chain> chains;
        chains.reserve(static_cast<std::size_t>(lanes) * kChains);
        for (int lane = 0; lane < lanes; ++lane)
            for (int c = 0; c < kChains; ++c) {
                chains.push_back(
                    Chain{&engine, &acc[static_cast<std::size_t>(lane)], kChainEvents});
                Chain* chain = &chains.back();
                engine.schedule_in_shard(lane, sim::SimTime{c}, [chain] { chain->fire(); });
            }
        const auto t0 = std::chrono::steady_clock::now();
        engine.run();
        const double seconds = seconds_since(t0);
        std::uint64_t digest = 0;
        for (const std::uint64_t a : acc) digest ^= a;
        return std::pair<double, std::uint64_t>{seconds, digest};
    };
    const auto [serial_seconds, serial_digest] = run_engine(false);
    const auto [pool_seconds, pool_digest] = run_engine(true);
    const std::uint64_t engine_events =
        static_cast<std::uint64_t>(lanes) * kChains * kChainEvents;

    char engine_buf[512];
    std::snprintf(engine_buf, sizeof(engine_buf),
                  "\"engine\": {\"lanes\": %d, \"pool_threads\": %d, \"events\": %llu, "
                  "\"serial_seconds\": %.3f, \"pool_seconds\": %.3f, "
                  "\"dispatch_speedup\": %.2f, \"results_match\": %s}",
                  lanes, parallel::thread_count(),
                  static_cast<unsigned long long>(engine_events), serial_seconds,
                  pool_seconds, pool_seconds > 0.0 ? serial_seconds / pool_seconds : 0.0,
                  serial_digest == pool_digest ? "true" : "false");
    std::string out = std::string("{\n    ") + engine_buf;

    // --- deployment: shards=1 vs shards=4 on the named scenario -----------
    if (const char* scenario = std::getenv("NS_BENCH_SIM_PARALLEL")) {
        const auto run_deployment = [&](int shards, char* buf, std::size_t n) {
            auto loaded = load_scenario(scenario);
            if (!loaded) {
                std::fprintf(stderr, "[scenario] NS_BENCH_SIM_PARALLEL: %s\n",
                             loaded.error().message.c_str());
                return false;
            }
            loaded.value().shards = shards;
            std::printf("[scenario] running %s at shards=%d...\n", scenario, shards);
            std::fflush(stdout);
            const auto t0 = std::chrono::steady_clock::now();
            Simulation sim(std::move(loaded.value()));
            sim.run();
            const double wall = seconds_since(t0);
            const Simulation::PerfStats perf = sim.perf_stats();
            const sim::Simulator::ShardStats& ss = sim.simulator().shard_stats();
            const obs::ProcessMemory mem = obs::read_process_memory();
            std::snprintf(buf, n,
                          "{\"shards\": %d, \"wall_seconds\": %.3f, "
                          "\"events_dispatched\": %llu, \"events_per_second\": %.0f, "
                          "\"peak_rss_bytes\": %zu, \"windows\": %llu, "
                          "\"window_stalls\": %llu, \"cross_messages\": %llu, "
                          "\"cross_clamped\": %llu}",
                          shards, wall, static_cast<unsigned long long>(perf.sim.dispatched),
                          wall > 0.0 ? static_cast<double>(perf.sim.dispatched) / wall : 0.0,
                          mem.peak_rss_bytes, static_cast<unsigned long long>(ss.windows),
                          static_cast<unsigned long long>(ss.window_stalls),
                          static_cast<unsigned long long>(ss.cross_messages),
                          static_cast<unsigned long long>(ss.cross_clamped));
            std::printf("[scenario] shards=%d done: %.1fs wall\n", shards, wall);
            return true;
        };
        char one[512], four[512];
        if (run_deployment(1, one, sizeof(one)) && run_deployment(4, four, sizeof(four))) {
            out += ",\n    \"deployment\": {\"scenario\": \"";
            out += scenario;
            out += "\",\n      \"baseline\": ";
            out += one;
            out += ",\n      \"sharded\": ";
            out += four;
            out += "\n    }";
        }
    }
    return out + "\n  }";
}

/// The "recovery" headline section: a small fixed chaos campaign (seeded,
/// deterministic — independent of the NS_BENCH_* scale knobs so the numbers
/// are comparable across runs), reduced to per-fault time-to-recover via
/// analysis::recovery_report. This is where the recovery SLOs of
/// docs/ROBUSTNESS.md get tracked as diffable numbers.
std::string recovery_section_json() {
    SimulationConfig config;
    config.seed = 42;
    config.peers = 3000;
    config.behavior.warmup = sim::days(2.0);
    config.behavior.window = sim::days(5.0);
    config.behavior.downloads_per_peer_per_month = 10.0;
    auto spec = fault::parse_campaign(
        "seed=7 waves=3 mean_concurrent=2 start=3 spacing=1 duration=0.15 fraction=0.15");
    if (!spec) return "";
    config.campaigns.push_back(spec.value());

    std::printf("[scenario] running recovery campaign (%d peers, campaign seed 7)...\n",
                config.peers);
    std::fflush(stdout);
    const auto t0 = std::chrono::steady_clock::now();
    Simulation sim(config);
    sim.run();
    const double wall_seconds = seconds_since(t0);

    const analysis::RecoveryReport report = analysis::recovery_report(sim.trace());
    const auto outcomes = analysis::outcome_stats(sim.trace());
    const double served =
        outcomes.all.completed + outcomes.all.failed_system + outcomes.all.failed_other;
    const double delivery = served > 0 ? outcomes.all.completed / served : 0.0;

    std::string faults = "[";
    for (std::size_t i = 0; i < report.faults.size(); ++i) {
        const analysis::FaultRecovery& f = report.faults[i];
        char row[256];
        std::snprintf(row, sizeof(row),
                      "%s\n      {\"kind\": \"%s\", \"onset_days\": %.2f, \"restore_days\": %.2f, "
                      "\"evaluable\": %s, \"recover_hours\": %.2f, \"min_delivery\": %.3f}",
                      i == 0 ? "" : ",", std::string(analysis::to_string(f.kind)).c_str(),
                      f.onset.days(), f.restore.days(), f.evaluable ? "true" : "false",
                      f.recover_hours, f.min_delivery_during);
        faults += row;
    }
    faults += "\n    ]";

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "    \"campaign\": \"seed=7 waves=3 mean_concurrent=2\",\n"
                  "    \"wall_seconds\": %.3f,\n"
                  "    \"delivery\": %.4f,\n"
                  "    \"all_recovered\": %s,\n"
                  "    \"worst_recover_hours\": %.2f,\n"
                  "    \"faults\": ",
                  wall_seconds, delivery, report.all_recovered ? "true" : "false",
                  report.worst_recover_hours);
    return std::string(buf) + faults + "\n  }";
}

// Machine-readable record of a fresh standard-scenario run: wall-clock plus
// the engine's hot-path counters and the full per-subsystem metric registry
// (obs::to_json — control/edge/client/flow/sim breakdowns). Written next to
// the dataset cache so perf regressions show up as a diffable number, not a
// feeling. Only fresh runs emit it — a cache load measures deserialization,
// not the simulator.
void write_headline_json(const BenchArgs& args, double wall_seconds, const Simulation& sim,
                         const trace::Dataset& dataset, const char* cache_path) {
    const Simulation::PerfStats perf = sim.perf_stats();
    const std::string path = args.cache_dir + "/BENCH_headline.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    const double events_per_second =
        wall_seconds > 0.0 ? static_cast<double>(perf.sim.dispatched) / wall_seconds : 0.0;
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"scenario\": {\"peers\": %d, \"days\": %.1f, \"warmup\": %.1f, "
                 "\"seed\": %llu},\n",
                 args.peers, args.days, args.warmup,
                 static_cast<unsigned long long>(args.seed));
    std::fprintf(f, "  \"wall_seconds\": %.3f,\n", wall_seconds);
    std::fprintf(f,
                 "  \"events\": {\"scheduled\": %llu, \"dispatched\": %llu, "
                 "\"cancelled\": %llu, \"callback_heap_allocs\": %llu, "
                 "\"dispatched_per_second\": %.0f},\n",
                 static_cast<unsigned long long>(perf.sim.scheduled),
                 static_cast<unsigned long long>(perf.sim.dispatched),
                 static_cast<unsigned long long>(perf.sim.cancelled),
                 static_cast<unsigned long long>(perf.sim.callback_heap_allocs),
                 events_per_second);
    std::fprintf(f,
                 "  \"flows\": {\"started\": %llu, \"completed\": %llu, "
                 "\"cancelled\": %llu, \"refills\": %llu, \"resort_hits\": %llu, "
                 "\"resort_misses\": %llu},\n",
                 static_cast<unsigned long long>(perf.flows.flows_started),
                 static_cast<unsigned long long>(perf.flows.flows_completed),
                 static_cast<unsigned long long>(perf.flows.flows_cancelled),
                 static_cast<unsigned long long>(perf.flows.refills),
                 static_cast<unsigned long long>(perf.flows.resort_hits),
                 static_cast<unsigned long long>(perf.flows.resort_misses));
    const obs::ProcessMemory mem = obs::read_process_memory();
    std::fprintf(f, "  \"memory\": {\"rss_bytes\": %zu, \"peak_rss_bytes\": %zu},\n",
                 mem.rss_bytes, mem.peak_rss_bytes);
    std::fprintf(f,
                 "  \"log_entries\": {\"downloads\": %zu, \"logins\": %zu, "
                 "\"transfers\": %zu, \"registrations\": %zu},\n",
                 dataset.log.downloads().size(), dataset.log.logins().size(),
                 dataset.log.transfers().size(), dataset.log.registrations().size());
    std::fprintf(f, "  \"analysis\": %s,\n", analysis_section_json(dataset, cache_path).c_str());
    std::fprintf(f, "  \"sim_parallel\": %s,\n", sim_parallel_section_json().c_str());
    const std::string recovery = recovery_section_json();
    if (!recovery.empty()) std::fprintf(f, "  \"recovery\": %s,\n", recovery.c_str());
    const std::string scale = scale_section_json();
    if (!scale.empty()) std::fprintf(f, "  \"scale\": %s,\n", scale.c_str());
    // Per-subsystem breakdown: the whole metric registry, re-indented so the
    // exporter's top-level object nests under the "metrics" key.
    std::string metrics = obs::to_json(sim.metrics());
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    std::string nested;
    for (char c : metrics) {
        nested += c;
        if (c == '\n') nested += "  ";
    }
    std::fprintf(f, "  \"metrics\": %s\n", nested.c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("[scenario] perf headline written to %s (%.1fs wall, %.0f events/s)\n",
                path.c_str(), wall_seconds, events_per_second);
}
}  // namespace

BenchArgs bench_args() {
    BenchArgs args;
    args.peers = static_cast<int>(env_double("NS_BENCH_PEERS", args.peers));
    args.days = env_double("NS_BENCH_DAYS", args.days);
    args.warmup = env_double("NS_BENCH_WARMUP", args.warmup);
    // Seeds are full 64-bit values; parsing through double (atof) would
    // silently round anything above 2^53.
    if (const char* s = std::getenv("NS_BENCH_SEED")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 0);
        if (end != s && *end == '\0') args.seed = v;
    }
    if (const char* dir = std::getenv("NS_BENCH_CACHE")) args.cache_dir = dir;
    return args;
}

SimulationConfig standard_config(const BenchArgs& args) {
    SimulationConfig config;
    config.seed = args.seed;
    config.peers = args.peers;
    config.behavior.window = sim::days(args.days);
    config.behavior.warmup = sim::days(args.warmup);
    config.behavior.downloads_per_peer_per_month = 6.0;
    return config;
}

net::AsGraph standard_as_graph(const BenchArgs& args) {
    // Mirrors Simulation's construction: the graph depends only on
    // (seed, as_graph config), so it can be rebuilt without re-running.
    const auto config = standard_config(args);
    Rng root(config.seed);
    return net::AsGraph::generate(config.as_graph, root.child("as-graph"));
}

trace::Dataset standard_dataset(const BenchArgs& args) {
    std::filesystem::create_directories(args.cache_dir);
    char name[256];
    std::snprintf(name, sizeof(name), "%s/standard_p%d_d%.0f_w%.0f_s%llu.nstrace",
                  args.cache_dir.c_str(), args.peers, args.days, args.warmup,
                  static_cast<unsigned long long>(args.seed));

    trace::Dataset dataset;
    if (trace::load_dataset(dataset, name)) {
        std::printf("[scenario] loaded cached data set %s (%zu log entries)\n", name,
                    dataset.log.total_entries());
        return dataset;
    }

    std::printf("[scenario] running standard scenario: %d peers, %.0f+%.0f days, seed %llu...\n",
                args.peers, args.warmup, args.days,
                static_cast<unsigned long long>(args.seed));
    std::fflush(stdout);
    const auto t0 = std::chrono::steady_clock::now();
    Simulation sim(standard_config(args));
    sim.run();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    dataset.log = sim.trace();
    sim.geodb().for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
        dataset.geodb.register_ip(ip, rec);
    });
    const bool cached = trace::save_dataset(dataset, name);
    if (cached) std::printf("[scenario] cached to %s\n", name);
    write_headline_json(args, wall_seconds, sim, dataset, cached ? name : nullptr);
    std::printf("[scenario] %zu downloads, %zu logins, %zu transfers, %zu registrations\n",
                dataset.log.downloads().size(), dataset.log.logins().size(),
                dataset.log.transfers().size(), dataset.log.registrations().size());
    return dataset;
}

void print_banner(const std::string& name, const std::string& paper_ref, const BenchArgs& args) {
    std::printf("==============================================================\n");
    std::printf("%s — reproduces %s\n", name.c_str(), paper_ref.c_str());
    std::printf("(Zhao et al., \"Peer-Assisted Content Distribution in Akamai\n");
    std::printf(" NetSession\", IMC 2013; synthetic deployment, %d peers)\n", args.peers);
    std::printf("==============================================================\n");
}

}  // namespace netsession::bench
