// §6.2: user mobility and directory churn.
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_mobility", "§6.2 (mobility-related churn)", args);
    const auto dataset = bench::standard_dataset(args);
    const analysis::LoginIndex logins(dataset.log);
    const auto m = analysis::mobility_stats(dataset.log, logins, dataset.geodb);

    std::printf("\nGUIDs observed: %s\n", format_count(m.guids).c_str());
    std::printf("Connected from a single AS:   %s (paper: 80.6%%)\n",
                format_percent(m.frac_single_as).c_str());
    std::printf("Connected from two ASes:      %s (paper: 13.4%%)\n",
                format_percent(m.frac_two_as).c_str());
    std::printf("Connected from >2 ASes:       %s (paper: 6%%)\n",
                format_percent(m.frac_more_as).c_str());
    std::printf("Stayed within 10 km:          %s (paper: 77%%)\n",
                format_percent(m.frac_within_10km).c_str());
    std::printf("New control-plane connections per minute: %.1f (paper: 20,922 at 26M peers —\n"
                "scale-proportional: ~%.1f expected at this population)\n",
                m.new_connections_per_minute,
                20922.0 * static_cast<double>(args.peers) / 26e6);
    return 0;
}
