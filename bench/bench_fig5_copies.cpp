// Fig 5: Number of registered file copies vs peer efficiency.
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig5_copies", "Fig 5 (registered copies vs peer efficiency)",
                        args);
    const auto dataset = bench::standard_dataset(args);
    const auto fig5 = analysis::efficiency_vs_copies(dataset.log);

    analysis::TextTable table({"Copies registered", "Mean eff.", "20th pct", "80th pct",
                               "Objects"});
    for (const auto& bin : fig5.bins) {
        char range[48];
        std::snprintf(range, sizeof(range), "%.0f - %.0f", bin.copies_lo, bin.copies_hi);
        table.add_row({range, format_percent(bin.mean), format_percent(bin.p20),
                       format_percent(bin.p80), format_count(bin.objects)});
    }
    std::printf("\n%s\n", table.render().c_str());
    std::printf(
        "Paper shape: <50 copies -> <10%% efficiency, rising steeply and reaching ~80%%\n"
        "at ~10,000 copies. The synthetic deployment is ~10^3 smaller, so the curve's\n"
        "knee sits at proportionally fewer copies; the monotone rise and the ~80%%\n"
        "plateau are the reproduction targets.\n");
    return 0;
}
