// Table 1: Overall statistics for the data sets.
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_table1_overall", "Table 1 (overall data-set statistics)", args);
    const auto dataset = bench::standard_dataset(args);
    const auto stats = analysis::overall_stats(dataset.log, dataset.geodb);

    analysis::TextTable table({"Statistic", "Measured", "Paper (Oct 2012)"});
    table.add_row({"Control plane logs:", "", ""});
    table.add_row({"  Log entries", format_count(static_cast<std::int64_t>(stats.log_entries)),
                   "4,150,989,257"});
    table.add_row({"  Number of GUIDs", format_count(static_cast<std::int64_t>(stats.guids)),
                   "25,941,122"});
    table.add_row({"  Distinct URLs",
                   format_count(static_cast<std::int64_t>(stats.distinct_urls)), "4,038,894"});
    table.add_row({"  Distinct IPs", format_count(static_cast<std::int64_t>(stats.distinct_ips)),
                   "133,690,372"});
    table.add_row({"  Downloads initiated",
                   format_count(static_cast<std::int64_t>(stats.downloads_initiated)),
                   "12,508,764"});
    table.add_row({"Geolocation data:", "", ""});
    table.add_row({"  Distinct locations",
                   format_count(static_cast<std::int64_t>(stats.distinct_locations)), "34,383"});
    table.add_row({"  Distinct autonomous systems",
                   format_count(static_cast<std::int64_t>(stats.distinct_ases)), "31,190"});
    table.add_row({"  Distinct country codes",
                   format_count(static_cast<std::int64_t>(stats.distinct_countries)), "239"});
    std::printf("\n%s\n", table.render().c_str());
    std::printf(
        "Note: absolute totals scale with the synthetic population (~10^3 smaller than\n"
        "production); the reproduction targets are the *ratios* (entries per GUID,\n"
        "downloads per GUID, IPs per GUID) and the structure of the data set.\n");
    std::printf("Per-GUID ratios: %.1f log entries, %.2f downloads, %.2f IPs (paper: 160.0, "
                "0.48, 5.15)\n",
                static_cast<double>(stats.log_entries) / static_cast<double>(stats.guids),
                static_cast<double>(stats.downloads_initiated) / static_cast<double>(stats.guids),
                static_cast<double>(stats.distinct_ips) / static_cast<double>(stats.guids));
    return 0;
}
