// Fig 6: Impact of the number of peers (initially returned by the control
// plane) on peer efficiency.
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig6_peers_returned",
                        "Fig 6 (peers returned vs peer efficiency)", args);
    const auto dataset = bench::standard_dataset(args);
    const auto fig6 = analysis::efficiency_vs_peers_returned(dataset.log);

    analysis::TextTable table({"Peers initially returned", "Mean efficiency", "Downloads"});
    for (std::size_t k = 0; k < fig6.groups.size(); ++k) {
        if (fig6.groups[k].downloads == 0) continue;
        table.add_row({format_count(static_cast<std::int64_t>(k)),
                       format_percent(fig6.groups[k].mean_efficiency),
                       format_count(fig6.groups[k].downloads)});
    }
    std::printf("\n%s\n", table.render().c_str());

    // The paper's headline: ~80% efficiency is reached with about 25-30
    // peers; find our crossing point.
    int crossing = -1;
    for (std::size_t k = 0; k < fig6.groups.size(); ++k)
        if (fig6.groups[k].downloads >= 5 && fig6.groups[k].mean_efficiency >= 0.75) {
            crossing = static_cast<int>(k);
            break;
        }
    if (crossing >= 0)
        std::printf("~75-80%% efficiency first reached at %d peers (paper: 25-30 peers;\n"
                    "fewer are needed here because simulated uploaders are fewer but\n"
                    "less oversubscribed).\n",
                    crossing);
    else
        std::printf("75%% efficiency not reached — increase NS_BENCH_PEERS for denser swarms.\n");
    return 0;
}
