// §3.8/§5.2 robustness: the chaos matrix, now with measured recovery SLOs.
//
// Part 1 — single-fault matrix: one undisturbed baseline run, then one run
// per fault class injected through the FaultPlan engine. Each row reports
// download completion, p2p offload, the client-side degradation counters,
// and the recovery measurements from the trace's fault timeline (v8):
// minimum delivery while the fault was active and time-to-recover after the
// restore. Rows gate on two SLOs (docs/ROBUSTNESS.md):
//
//   delivery >= 0.95    completion among non-user-aborted downloads
//   TTR <= class bound  12 sim-hours for infrastructure outage classes
//                       (edge/cn/dn outages, partitions), 24 for the rest
//
// Part 2 — chaos campaigns: three seeded campaigns of overlapping faults
// (mean two concurrent, correlated pairs included) must each hold delivery
// >= 0.95 — the paper's graceful-degradation claim under *compound* failure.
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/measurement.hpp"
#include "analysis/recovery.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_spec.hpp"

namespace {

using namespace netsession;

struct CellResult {
    double completion = 0;  // completed / all downloads (user aborts included)
    double delivery = 0;    // completed / (completed + failed): robustness metric
    double offload = 0;
    std::int64_t downloads = 0;
    analysis::DegradationStats degradations;
    analysis::RecoveryReport recovery;
};

CellResult run(const bench::BenchArgs& args, const fault::FaultPlan& plan,
               const std::vector<fault::CampaignSpec>& campaigns) {
    auto config = bench::standard_config(args);
    config.peers = std::min(config.peers, 6000);  // robustness runs are separate sims
    config.behavior.warmup = sim::days(3.0);
    config.behavior.window = sim::days(6.0);
    config.behavior.downloads_per_peer_per_month = 10.0;
    config.faults = plan;
    config.campaigns = campaigns;
    Simulation s(config);
    s.run();

    CellResult r;
    const auto outcomes = analysis::outcome_stats(s.trace());
    r.completion = outcomes.all.completed;
    // User aborts (patience/changed-mind, §5.2/Fig 7) are a behaviour
    // constant, not a delivery failure; the robustness gate is completion
    // among downloads the user actually waited for.
    const double served = outcomes.all.completed + outcomes.all.failed_system +
                          outcomes.all.failed_other;
    r.delivery = served > 0 ? outcomes.all.completed / served : 0;
    r.downloads = outcomes.all.n;
    r.offload = analysis::headline_offload(s.trace()).overall_offload;
    r.degradations = analysis::degradation_stats(s.trace());
    r.recovery = analysis::recovery_report(s.trace());
    return r;
}

fault::FaultPlan plan_of(const std::string& line) {
    fault::FaultPlan plan;
    auto event = fault::parse_fault_event(line);
    if (!event.ok()) {
        std::printf("BAD FAULT LINE: %s (%s)\n", line.c_str(), event.error().message.c_str());
        std::exit(1);
    }
    plan.events.push_back(event.value());
    return plan;
}

fault::CampaignSpec campaign_of(const std::string& line) {
    auto spec = fault::parse_campaign(line);
    if (!spec.ok()) {
        std::printf("BAD CAMPAIGN LINE: %s (%s)\n", line.c_str(), spec.error().message.c_str());
        std::exit(1);
    }
    return spec.value();
}

/// Worst time-to-recover across the run's evaluable faults; -1 when one
/// never recovered within the horizon.
double worst_ttr(const analysis::RecoveryReport& report) {
    if (!report.all_recovered) return -1.0;
    return report.worst_recover_hours;
}

}  // namespace

int main() {
    const auto args = bench::bench_args();
    bench::print_banner("bench_robustness", "§3.8/§5.2 chaos matrix + recovery SLOs", args);

    // One representative fault per class, each landing mid-window (day 6 of
    // a 3+6-day run) so warm swarms feel it. Durations are chosen so the
    // fault covers a meaningful slice of the window but recovery is visible.
    struct Row {
        const char* name;
        const char* fault;     // empty = undisturbed baseline
        double ttr_slo_hours;  // recovery SLO for this class
    };
    // Region 7 is EU-West (the peer-heaviest region) and ASN 1703 is the
    // largest eyeball AS at the default bench seed — targets chosen so the
    // fault demonstrably hits population, not empty infrastructure.
    // Outage classes must recover within 12 sim-hours; the soft classes
    // (degradations, churn, crowds, STUN loss) within 24.
    const std::vector<Row> rows = {
        {"undisturbed", "", 24.0},
        {"edge outage (EU-West, 12h)", "edge_outage at=6 duration=0.5 region=7", 12.0},
        {"edge outage (all, 2h)", "edge_outage at=6 duration=0.0833 region=all", 12.0},
        {"region partition (EU-West, 12h)", "region_partition at=6 duration=0.5 region=7", 12.0},
        {"AS degradation (lat x5, rate x0.2)",
         "as_degradation at=5 duration=2 asn=1703 latency_x=5 rate_x=0.2 loss=0.05", 24.0},
        {"STUN blackout (2 days)", "stun_blackout at=5 duration=2", 24.0},
        {"mass churn (30% crash)", "mass_churn at=6 fraction=0.3", 24.0},
        {"CN outage (all, 12h)", "cn_outage at=6 duration=0.5 region=all", 12.0},
        {"DN outage (all, 12h)", "dn_outage at=6 duration=0.5 region=all", 12.0},
        {"flash crowd (20%)", "flash_crowd at=6 fraction=0.2", 24.0},
    };

    std::printf("\n%-36s %10s %10s %11s %8s %7s %7s %8s %8s\n", "scenario", "completion",
                "delivery", "p2p offload", "dl", "stalls", "blist", "min-del", "ttr(h)");
    bool all_pass = true;
    for (const auto& row : rows) {
        const fault::FaultPlan plan =
            row.fault[0] ? plan_of(row.fault) : fault::FaultPlan{};
        const CellResult r = run(args, plan, {});
        const auto& d = r.degradations;
        const std::int64_t stalls = d.edge_stalls + d.peer_stalls;
        double min_delivery = 1.0;
        for (const auto& f : r.recovery.faults)
            min_delivery = std::min(min_delivery, f.min_delivery_during);
        const double ttr = worst_ttr(r.recovery);
        const bool ttr_ok = row.fault[0] == '\0' || (ttr >= 0.0 && ttr <= row.ttr_slo_hours);
        const bool pass = r.delivery >= 0.95 && ttr_ok;
        all_pass = all_pass && pass;
        char ttr_text[16];
        if (row.fault[0] == '\0')
            std::snprintf(ttr_text, sizeof(ttr_text), "-");
        else if (ttr < 0.0)
            std::snprintf(ttr_text, sizeof(ttr_text), "never");
        else
            std::snprintf(ttr_text, sizeof(ttr_text), "%.1f", ttr);
        std::printf("%-36s %10s %10s %11s %8lld %7lld %7lld %8s %8s%s\n", row.name,
                    format_percent(r.completion).c_str(), format_percent(r.delivery).c_str(),
                    format_percent(r.offload).c_str(), static_cast<long long>(r.downloads),
                    static_cast<long long>(stalls),
                    static_cast<long long>(d.sources_blacklisted),
                    format_percent(min_delivery).c_str(), ttr_text, pass ? "" : "  << FAIL");
    }

    // Compound-failure campaigns: overlapping faults, mean two concurrent,
    // correlated pairs included. Deterministic per seed.
    const std::vector<std::uint64_t> campaign_seeds = {7, 11, 13};
    std::printf("\n%-36s %10s %10s %8s %8s %8s\n", "campaign", "delivery", "offload", "faults",
                "min-del", "ttr(h)");
    for (const std::uint64_t seed : campaign_seeds) {
        const std::string line =
            "seed=" + std::to_string(seed) +
            " waves=3 mean_concurrent=2 start=4 spacing=1 duration=0.15 fraction=0.15";
        const CellResult r = run(args, {}, {campaign_of(line)});
        double min_delivery = 1.0;
        int evaluable = 0;
        for (const auto& f : r.recovery.faults) {
            min_delivery = std::min(min_delivery, f.min_delivery_during);
            if (f.evaluable) ++evaluable;
        }
        const double ttr = worst_ttr(r.recovery);
        const bool pass = r.delivery >= 0.95;
        all_pass = all_pass && pass;
        char ttr_text[16];
        if (ttr < 0.0)
            std::snprintf(ttr_text, sizeof(ttr_text), "never");
        else
            std::snprintf(ttr_text, sizeof(ttr_text), "%.1f", ttr);
        std::printf("%-36s %10s %10s %8d %8s %8s%s\n",
                    ("chaos campaign (seed " + std::to_string(seed) + ")").c_str(),
                    format_percent(r.delivery).c_str(), format_percent(r.offload).c_str(),
                    evaluable, format_percent(min_delivery).c_str(), ttr_text,
                    pass ? "" : "  << FAIL");
    }

    std::printf("\nReproduction target (§3.8): every single-fault class keeps delivery\n"
                "completion (completed / non-user-aborted) >= 95%% AND recovers within\n"
                "its SLO (12 sim-hours for outage classes, 24 for the rest); seeded\n"
                "chaos campaigns with ~2 concurrent faults hold delivery >= 95%%. %s\n",
                all_pass ? "PASS" : "FAIL");
    return all_pass ? 0 : 1;
}
