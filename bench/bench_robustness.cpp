// §3.8/§5.2 robustness: a chaos matrix. One undisturbed baseline run, then
// one run per single-fault class injected through the FaultPlan engine, each
// reporting download completion, p2p offload, and the client-side degradation
// counters (stalls, edge re-maps, blacklistings, control-plane timeouts).
//
// Reproduction target: NetSession "degrades gracefully" — every single-fault
// class should keep completion >= 0.95 while the degradation counters show
// the fault was actually felt (the matrix is not a no-op).
#include <vector>

#include "analysis/measurement.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"
#include "fault/fault_spec.hpp"

namespace {

using namespace netsession;

struct CellResult {
    double completion = 0;  // completed / all downloads (user aborts included)
    double delivery = 0;    // completed / (completed + failed): robustness metric
    double offload = 0;
    std::int64_t downloads = 0;
    analysis::DegradationStats degradations;
};

CellResult run(const bench::BenchArgs& args, const fault::FaultPlan& plan) {
    auto config = bench::standard_config(args);
    config.peers = std::min(config.peers, 6000);  // robustness runs are separate sims
    config.behavior.warmup = sim::days(3.0);
    config.behavior.window = sim::days(6.0);
    config.behavior.downloads_per_peer_per_month = 10.0;
    config.faults = plan;
    Simulation s(config);
    s.run();

    CellResult r;
    const auto outcomes = analysis::outcome_stats(s.trace());
    r.completion = outcomes.all.completed;
    // User aborts (patience/changed-mind, §5.2/Fig 7) are a behaviour
    // constant, not a delivery failure; the robustness gate is completion
    // among downloads the user actually waited for.
    const double served = outcomes.all.completed + outcomes.all.failed_system +
                          outcomes.all.failed_other;
    r.delivery = served > 0 ? outcomes.all.completed / served : 0;
    r.downloads = outcomes.all.n;
    r.offload = analysis::headline_offload(s.trace()).overall_offload;
    r.degradations = analysis::degradation_stats(s.trace());
    return r;
}

fault::FaultPlan plan_of(const std::string& line) {
    fault::FaultPlan plan;
    auto event = fault::parse_fault_event(line);
    if (!event.ok()) {
        std::printf("BAD FAULT LINE: %s (%s)\n", line.c_str(), event.error().message.c_str());
        std::exit(1);
    }
    plan.events.push_back(event.value());
    return plan;
}

}  // namespace

int main() {
    const auto args = bench::bench_args();
    bench::print_banner("bench_robustness", "§3.8/§5.2 chaos matrix (FaultPlan engine)", args);

    // One representative fault per class, each landing mid-window (day 6 of
    // a 3+6-day run) so warm swarms feel it. Durations are chosen so the
    // fault covers a meaningful slice of the window but recovery is visible.
    struct Row {
        const char* name;
        const char* fault;  // empty = undisturbed baseline
    };
    // Region 7 is EU-West (the peer-heaviest region) and ASN 1703 is the
    // largest eyeball AS at the default bench seed — targets chosen so the
    // fault demonstrably hits population, not empty infrastructure.
    const std::vector<Row> rows = {
        {"undisturbed", ""},
        {"edge outage (EU-West, 12h)", "edge_outage at=6 duration=0.5 region=7"},
        {"edge outage (all, 2h)", "edge_outage at=6 duration=0.0833 region=all"},
        {"region partition (EU-West, 12h)", "region_partition at=6 duration=0.5 region=7"},
        {"AS degradation (lat x5, rate x0.2)",
         "as_degradation at=5 duration=2 asn=1703 latency_x=5 rate_x=0.2 loss=0.05"},
        {"STUN blackout (2 days)", "stun_blackout at=5 duration=2"},
        {"mass churn (30% crash)", "mass_churn at=6 fraction=0.3"},
        {"CN outage (all, 12h)", "cn_outage at=6 duration=0.5 region=all"},
        {"DN outage (all, 12h)", "dn_outage at=6 duration=0.5 region=all"},
        {"flash crowd (20%)", "flash_crowd at=6 fraction=0.2"},
    };

    std::printf("\n%-36s %10s %10s %11s %9s %7s %7s %7s %7s\n", "scenario", "completion",
                "delivery", "p2p offload", "downloads", "stalls", "remaps", "blist", "ctl-to");
    bool all_pass = true;
    for (const auto& row : rows) {
        const fault::FaultPlan plan =
            row.fault[0] ? plan_of(row.fault) : fault::FaultPlan{};
        const CellResult r = run(args, plan);
        const auto& d = r.degradations;
        const std::int64_t stalls = d.edge_stalls + d.peer_stalls;
        const std::int64_t control_timeouts = d.query_timeouts + d.login_timeouts +
                                              d.stun_timeouts;
        const bool pass = r.delivery >= 0.95;
        all_pass = all_pass && pass;
        std::printf("%-36s %10s %10s %11s %9lld %7lld %7lld %7lld %7lld%s\n", row.name,
                    format_percent(r.completion).c_str(), format_percent(r.delivery).c_str(),
                    format_percent(r.offload).c_str(),
                    static_cast<long long>(r.downloads), static_cast<long long>(stalls),
                    static_cast<long long>(d.edge_remaps),
                    static_cast<long long>(d.sources_blacklisted),
                    static_cast<long long>(control_timeouts), pass ? "" : "  << FAIL");
    }

    std::printf("\nReproduction target (§3.8): every single-fault class keeps delivery\n"
                "completion (completed / non-user-aborted) >= 95%% — peers re-query,\n"
                "re-map to surviving edges, blacklist dead sources, and fall back to\n"
                "conservative NAT classification rather than failing downloads. %s\n",
                all_pass ? "PASS" : "FAIL");
    return all_pass ? 0 : 1;
}
