// §3.8 robustness: rolling CN/DN restarts and full control-plane outage,
// measured against an undisturbed baseline run.
#include "analysis/measurement.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

namespace {

using namespace netsession;

struct RunResult {
    double completion = 0;
    double offload = 0;
    std::int64_t downloads = 0;
};

RunResult run(const bench::BenchArgs& args, int mode) {
    auto config = bench::standard_config(args);
    config.peers = std::min(config.peers, 6000);  // robustness runs are separate sims
    config.behavior.warmup = sim::days(3.0);
    config.behavior.window = sim::days(6.0);
    config.behavior.downloads_per_peer_per_month = 10.0;
    Simulation s(config);
    auto& plane = s.control_plane();
    auto& simulator = s.simulator();

    if (mode == 1) {
        // Rolling restart of every CN and DN halfway through the window.
        simulator.schedule_at(sim::SimTime{} + sim::days(6.0), [&plane, &simulator] {
            for (auto& cn : plane.cns()) plane.fail_cn(cn->id());
            for (auto& dn : plane.dns()) plane.fail_dn(dn->id());
            simulator.schedule_after(sim::minutes(2.0), [&plane] {
                for (auto& cn : plane.cns()) plane.restart_cn(cn->id());
                for (auto& dn : plane.dns()) plane.restart_dn(dn->id());
            });
        });
    } else if (mode == 2) {
        // Permanent control-plane outage for the last third of the window.
        simulator.schedule_at(sim::SimTime{} + sim::days(7.0), [&plane] {
            for (auto& cn : plane.cns()) plane.fail_cn(cn->id());
            for (auto& dn : plane.dns()) plane.fail_dn(dn->id());
        });
    }
    s.run();

    RunResult r;
    const auto outcomes = analysis::outcome_stats(s.trace());
    r.completion = outcomes.all.completed;
    r.downloads = outcomes.all.n;
    const auto h = analysis::headline_offload(s.trace());
    r.offload = h.overall_offload;
    return r;
}

}  // namespace

int main() {
    const auto args = bench::bench_args();
    bench::print_banner("bench_robustness", "§3.8 (soft state, RE-ADD, edge fallback)", args);

    const RunResult baseline = run(args, 0);
    const RunResult rolling = run(args, 1);
    const RunResult outage = run(args, 2);

    std::printf("\n%-34s %12s %12s %10s\n", "scenario", "completion", "p2p offload",
                "downloads");
    std::printf("%-34s %12s %12s %10lld\n", "undisturbed",
                format_percent(baseline.completion).c_str(),
                format_percent(baseline.offload).c_str(),
                static_cast<long long>(baseline.downloads));
    std::printf("%-34s %12s %12s %10lld\n", "rolling CN+DN restart mid-window",
                format_percent(rolling.completion).c_str(),
                format_percent(rolling.offload).c_str(),
                static_cast<long long>(rolling.downloads));
    std::printf("%-34s %12s %12s %10lld\n", "permanent outage (last 2 days)",
                format_percent(outage.completion).c_str(),
                format_percent(outage.offload).c_str(),
                static_cast<long long>(outage.downloads));

    std::printf("\nReproduction targets (§3.8): restarting all CNs/DNs 'does not negatively\n"
                "affect the service' (completion unchanged; RE-ADD restores p2p); with the\n"
                "control plane gone entirely, peers fall back to the edge (completion holds,\n"
                "offload drops for the outage period).\n");
    return 0;
}
