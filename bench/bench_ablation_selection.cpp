// Ablation: locality-aware vs random peer selection (§3.7 / §6.1 / [7]).
//
// Selection order only matters when a swarm offers more candidates than a
// download uses, so this bench builds a *hot* swarm: one popular release
// cached by a third of the population, then a wave of downloads. The DN
// strategy decides whether sources are same-AS/country neighbours or random
// strangers — the ISP-impact question of §6.1.
#include <memory>

#include "accounting/accounting.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/netsession_client.hpp"
#include "workload/population.hpp"

namespace {

using namespace netsession;

struct RunStats {
    double intra_as = 0, intra_country = 0, efficiency = 0;
    Bytes p2p_bytes = 0;
};

RunStats run(std::uint64_t seed, int n, control::SelectionPolicy::Strategy strategy) {
    sim::Simulator simulator;
    net::World world(simulator, net::AsGraph::generate(net::AsGraphConfig{}, Rng(seed)));
    edge::Catalog catalog;
    const ObjectId release{9, 9};
    {
        swarm::ContentObject object(release, CpCode{1000}, 1, 500_MB, 64);
        edge::ObjectPolicy policy;
        policy.p2p_enabled = true;
        catalog.publish(std::move(object), policy);
    }
    edge::EdgeNetwork edges(world, catalog, edge::EdgeNetworkConfig{});
    trace::TraceLog log;
    accounting::AccountingService accounting(log);
    control::ControlPlaneConfig cp_config;
    cp_config.selection.strategy = strategy;
    control::ControlPlane plane(world, edges.authority(), log, accounting, cp_config,
                                Rng(seed).child("cp"));
    peer::PeerRegistry registry;

    Rng rng(seed);
    workload::PopulationGenerator population(workload::PopulationConfig{}, world.as_graph(),
                                             rng.child("pop"));
    std::vector<std::unique_ptr<peer::NetSessionClient>> clients;
    for (int i = 0; i < n; ++i) {
        const auto spec = population.next();
        net::HostInfo info;
        info.attach.location = spec.location;
        info.attach.asn = spec.asn;
        info.attach.nat = spec.nat;
        info.up = spec.up;
        info.down = spec.down;
        peer::ClientConfig config;
        config.uploads_enabled = true;  // isolate the selection policy
        clients.push_back(std::make_unique<peer::NetSessionClient>(
            world, plane, edges, catalog, registry, Guid{rng.next(), rng.next()},
            world.create_host(info), config, rng.child("c" + std::to_string(i))));
        clients.back()->start();
    }
    simulator.run_until(sim::SimTime{} + sim::minutes(5.0));

    // Warm the swarm: a third of the population already has the release.
    for (int i = 0; i < n / 3; ++i) clients[static_cast<std::size_t>(i)]->begin_download(release);
    simulator.run_until(sim::SimTime{} + sim::hours(8.0));

    // The measured wave: everyone else fetches it over the next two hours.
    for (int i = n / 3; i < n; ++i) {
        peer::NetSessionClient* c = clients[static_cast<std::size_t>(i)].get();
        simulator.schedule_after(sim::minutes(rng.uniform(0.0, 120.0)),
                                 [c, release] { c->begin_download(release); });
    }
    simulator.run_until(sim::SimTime{} + sim::hours(24.0));

    RunStats r;
    Bytes same_as = 0, same_country = 0;
    for (const auto& t : log.transfers()) {
        if (t.time < sim::SimTime{} + sim::hours(8.0)) continue;  // wave only
        const auto from = world.geodb().lookup(t.from_ip);
        const auto to = world.geodb().lookup(t.to_ip);
        if (!from || !to) continue;
        r.p2p_bytes += t.bytes;
        if (from->asn == to->asn) same_as += t.bytes;
        if (from->location.country == to->location.country) same_country += t.bytes;
    }
    if (r.p2p_bytes > 0) {
        r.intra_as = static_cast<double>(same_as) / static_cast<double>(r.p2p_bytes);
        r.intra_country = static_cast<double>(same_country) / static_cast<double>(r.p2p_bytes);
    }
    double eff_sum = 0;
    int eff_n = 0;
    for (const auto& d : log.downloads()) {
        if (d.outcome != trace::DownloadOutcome::completed ||
            d.start < sim::SimTime{} + sim::hours(8.0))
            continue;
        eff_sum += d.peer_efficiency();
        ++eff_n;
    }
    r.efficiency = eff_n == 0 ? 0.0 : eff_sum / eff_n;
    return r;
}

}  // namespace

int main() {
    const auto args = bench::bench_args();
    bench::print_banner("bench_ablation_selection",
                        "ablation: locality-aware vs random DN selection", args);
    const int n = std::min(args.peers, 4000);
    std::printf("hot-swarm workload: %d peers, one 500 MB release, 1/3 pre-seeded\n", n);

    const RunStats locality = run(args.seed, n, control::SelectionPolicy::Strategy::locality_aware);
    const RunStats random = run(args.seed, n, control::SelectionPolicy::Strategy::random);

    std::printf("\n%-22s %12s %14s %12s %12s\n", "strategy", "intra-AS", "intra-country",
                "efficiency", "p2p bytes");
    std::printf("%-22s %12s %14s %12s %12s\n", "locality-aware (prod)",
                format_percent(locality.intra_as).c_str(),
                format_percent(locality.intra_country).c_str(),
                format_percent(locality.efficiency).c_str(),
                format_bytes(locality.p2p_bytes).c_str());
    std::printf("%-22s %12s %14s %12s %12s\n", "random (tracker-like)",
                format_percent(random.intra_as).c_str(),
                format_percent(random.intra_country).c_str(),
                format_percent(random.efficiency).c_str(),
                format_bytes(random.p2p_bytes).c_str());

    std::printf("\nReproduction target: locality-aware selection keeps p2p traffic within\n"
                "ASes/countries at no efficiency cost — 'the CDN can avoid a large impact on\n"
                "ISPs by using a simple locality-aware peer selection strategy' (§7).\n");
    return 0;
}
