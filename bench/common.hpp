// Shared scaffolding for the table/figure benches.
//
// Every bench reproduces one table or figure of the paper from the *standard
// scenario*: a synthetic month of NetSession operation. The scenario is
// expensive, so the first bench that needs it runs it and caches the
// resulting data set on disk; the rest load the cache. Scale is controlled
// by environment variables so `for b in build/bench/*; do $b; done` works at
// a sane default while bigger runs remain one export away:
//
//   NS_BENCH_PEERS   peer population          (default 40000)
//   NS_BENCH_DAYS    measurement window days  (default 20)
//   NS_BENCH_WARMUP  warm-up days             (default 10)
//   NS_BENCH_SEED    master seed              (default 42)
//   NS_BENCH_CACHE   cache directory          (default ./bench_cache)
#pragma once

#include <string>

#include "analysis/measurement.hpp"
#include "core/simulation.hpp"
#include "net/as_graph.hpp"
#include "trace/serialize.hpp"

namespace netsession::bench {

struct BenchArgs {
    int peers = 40000;
    double days = 20.0;
    double warmup = 10.0;
    std::uint64_t seed = 42;
    std::string cache_dir = "bench_cache";
};

/// Reads the NS_BENCH_* environment overrides.
[[nodiscard]] BenchArgs bench_args();

/// The standard scenario configuration for the given args.
[[nodiscard]] SimulationConfig standard_config(const BenchArgs& args);

/// Loads the cached standard data set, or runs the scenario and caches it.
/// Prints progress to stdout. A fresh run (cache miss) also writes
/// `<cache_dir>/BENCH_headline.json` — wall-clock seconds, the engine's
/// perf counters (events dispatched/sec, callback heap allocations, flow
/// refills and sort-cache hits), the `"analysis"` section (full measurement
/// pipeline at NS_THREADS vs one thread with a fingerprint-equality check,
/// mmap vs buffered cache-load times; docs/PARALLELISM.md) and the full
/// per-subsystem metric registry (`"metrics"` key, obs::to_json) — so
/// scenario throughput and subsystem behaviour are tracked as one
/// machine-readable artefact.
[[nodiscard]] trace::Dataset standard_dataset(const BenchArgs& args);

/// The AS graph of the standard scenario (regenerated deterministically from
/// the seed; needed by the Fig 11 direct-connection analysis).
[[nodiscard]] net::AsGraph standard_as_graph(const BenchArgs& args);

/// Prints the bench banner: name, paper reference, scenario parameters.
void print_banner(const std::string& name, const std::string& paper_ref, const BenchArgs& args);

}  // namespace netsession::bench
