// Fig 8: Peer contributions in different regions for one p2p-enabled
// content provider.
#include "analysis/table.hpp"
#include "bench/common.hpp"
#include "common/format.hpp"

int main() {
    using namespace netsession;
    const auto args = bench::bench_args();
    bench::print_banner("bench_fig8_coverage", "Fig 8 (per-country peer contribution classes)",
                        args);
    const auto dataset = bench::standard_dataset(args);
    const analysis::LoginIndex logins(dataset.log);

    // One typical p2p-enabled provider (the paper shows one exemplary
    // customer): Customer D ships upload-enabled binaries and is p2p-heavy.
    const CpCode provider{1003};
    const auto coverage =
        analysis::coverage_by_country(dataset.log, logins, dataset.geodb, provider);

    static const char* kClassNames[3] = {"infra > peers (circle)", "infra 50-100% of peers (plus)",
                                         "infra < 50% of peers (square)"};
    std::array<int, 3> class_counts{};
    analysis::TextTable table({"Country", "Infra bytes", "Peer bytes", "Class"});
    int shown = 0;
    for (const auto& c : coverage) {
        ++class_counts[static_cast<std::size_t>(c.cls)];
        if (shown++ < 25)
            table.add_row({std::string(net::country(c.country).name),
                           format_bytes(c.infra_bytes), format_bytes(c.peer_bytes),
                           kClassNames[static_cast<std::size_t>(c.cls)]});
    }
    std::printf("\n%s\n", table.render().c_str());
    std::printf("Class totals over %zu countries: %d circle / %d plus / %d square\n",
                coverage.size(), class_counts[0], class_counts[1], class_counts[2]);
    std::printf("Paper finding: the picture is mixed — peers contribute somewhat more in\n"
                "under-served regions, but contributions 'do not vary much overall' because\n"
                "the edge infrastructure already has good global coverage.\n");
    return 0;
}
