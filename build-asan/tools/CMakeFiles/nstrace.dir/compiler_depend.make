# Empty compiler generated dependencies file for nstrace.
# This may be replaced when dependencies are built.
