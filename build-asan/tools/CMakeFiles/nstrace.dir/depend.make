# Empty dependencies file for nstrace.
# This may be replaced when dependencies are built.
