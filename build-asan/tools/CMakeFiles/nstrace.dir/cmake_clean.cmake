file(REMOVE_RECURSE
  "CMakeFiles/nstrace.dir/nstrace.cpp.o"
  "CMakeFiles/nstrace.dir/nstrace.cpp.o.d"
  "nstrace"
  "nstrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nstrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
