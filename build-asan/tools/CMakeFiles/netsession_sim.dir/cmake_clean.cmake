file(REMOVE_RECURSE
  "CMakeFiles/netsession_sim.dir/netsession_sim.cpp.o"
  "CMakeFiles/netsession_sim.dir/netsession_sim.cpp.o.d"
  "netsession_sim"
  "netsession_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsession_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
