# Empty compiler generated dependencies file for netsession_sim.
# This may be replaced when dependencies are built.
