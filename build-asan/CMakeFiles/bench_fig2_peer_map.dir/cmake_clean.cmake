file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_peer_map.dir/bench/bench_fig2_peer_map.cpp.o"
  "CMakeFiles/bench_fig2_peer_map.dir/bench/bench_fig2_peer_map.cpp.o.d"
  "bench/bench_fig2_peer_map"
  "bench/bench_fig2_peer_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_peer_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
