# Empty dependencies file for bench_fig2_peer_map.
# This may be replaced when dependencies are built.
