# Empty dependencies file for bench_table3_setting_changes.
# This may be replaced when dependencies are built.
