file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_setting_changes.dir/bench/bench_table3_setting_changes.cpp.o"
  "CMakeFiles/bench_table3_setting_changes.dir/bench/bench_table3_setting_changes.cpp.o.d"
  "bench/bench_table3_setting_changes"
  "bench/bench_table3_setting_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_setting_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
