file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_copies.dir/bench/bench_fig5_copies.cpp.o"
  "CMakeFiles/bench_fig5_copies.dir/bench/bench_fig5_copies.cpp.o.d"
  "bench/bench_fig5_copies"
  "bench/bench_fig5_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
