file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_workload.dir/bench/bench_fig3_workload.cpp.o"
  "CMakeFiles/bench_fig3_workload.dir/bench/bench_fig3_workload.cpp.o.d"
  "bench/bench_fig3_workload"
  "bench/bench_fig3_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
