file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_architectures.dir/bench/bench_ablation_architectures.cpp.o"
  "CMakeFiles/bench_ablation_architectures.dir/bench/bench_ablation_architectures.cpp.o.d"
  "bench/bench_ablation_architectures"
  "bench/bench_ablation_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
