# Empty dependencies file for bench_table4_upload_enabled.
# This may be replaced when dependencies are built.
