file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_upload_enabled.dir/bench/bench_table4_upload_enabled.cpp.o"
  "CMakeFiles/bench_table4_upload_enabled.dir/bench/bench_table4_upload_enabled.cpp.o.d"
  "bench/bench_table4_upload_enabled"
  "bench/bench_table4_upload_enabled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_upload_enabled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
