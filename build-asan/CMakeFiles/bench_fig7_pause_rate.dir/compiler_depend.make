# Empty compiler generated dependencies file for bench_fig7_pause_rate.
# This may be replaced when dependencies are built.
