file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pause_rate.dir/bench/bench_fig7_pause_rate.cpp.o"
  "CMakeFiles/bench_fig7_pause_rate.dir/bench/bench_fig7_pause_rate.cpp.o.d"
  "bench/bench_fig7_pause_rate"
  "bench/bench_fig7_pause_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pause_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
