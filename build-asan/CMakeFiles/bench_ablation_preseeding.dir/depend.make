# Empty dependencies file for bench_ablation_preseeding.
# This may be replaced when dependencies are built.
