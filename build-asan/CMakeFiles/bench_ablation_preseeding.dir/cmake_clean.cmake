file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preseeding.dir/bench/bench_ablation_preseeding.cpp.o"
  "CMakeFiles/bench_ablation_preseeding.dir/bench/bench_ablation_preseeding.cpp.o.d"
  "bench/bench_ablation_preseeding"
  "bench/bench_ablation_preseeding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preseeding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
