file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_coverage.dir/bench/bench_fig8_coverage.cpp.o"
  "CMakeFiles/bench_fig8_coverage.dir/bench/bench_fig8_coverage.cpp.o.d"
  "bench/bench_fig8_coverage"
  "bench/bench_fig8_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
