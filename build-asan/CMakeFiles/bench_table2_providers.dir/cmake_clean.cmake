file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_providers.dir/bench/bench_table2_providers.cpp.o"
  "CMakeFiles/bench_table2_providers.dir/bench/bench_table2_providers.cpp.o.d"
  "bench/bench_table2_providers"
  "bench/bench_table2_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
