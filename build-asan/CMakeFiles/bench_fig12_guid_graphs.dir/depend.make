# Empty dependencies file for bench_fig12_guid_graphs.
# This may be replaced when dependencies are built.
