file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_guid_graphs.dir/bench/bench_fig12_guid_graphs.cpp.o"
  "CMakeFiles/bench_fig12_guid_graphs.dir/bench/bench_fig12_guid_graphs.cpp.o.d"
  "bench/bench_fig12_guid_graphs"
  "bench/bench_fig12_guid_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_guid_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
