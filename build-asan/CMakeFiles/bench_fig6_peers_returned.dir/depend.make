# Empty dependencies file for bench_fig6_peers_returned.
# This may be replaced when dependencies are built.
