file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_peers_returned.dir/bench/bench_fig6_peers_returned.cpp.o"
  "CMakeFiles/bench_fig6_peers_returned.dir/bench/bench_fig6_peers_returned.cpp.o.d"
  "bench/bench_fig6_peers_returned"
  "bench/bench_fig6_peers_returned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_peers_returned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
