# Empty compiler generated dependencies file for bench_upgrade_rollout.
# This may be replaced when dependencies are built.
