file(REMOVE_RECURSE
  "CMakeFiles/bench_upgrade_rollout.dir/bench/bench_upgrade_rollout.cpp.o"
  "CMakeFiles/bench_upgrade_rollout.dir/bench/bench_upgrade_rollout.cpp.o.d"
  "bench/bench_upgrade_rollout"
  "bench/bench_upgrade_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upgrade_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
