file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pairwise.dir/bench/bench_fig11_pairwise.cpp.o"
  "CMakeFiles/bench_fig11_pairwise.dir/bench/bench_fig11_pairwise.cpp.o.d"
  "bench/bench_fig11_pairwise"
  "bench/bench_fig11_pairwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
