# Empty dependencies file for bench_fig11_pairwise.
# This may be replaced when dependencies are built.
