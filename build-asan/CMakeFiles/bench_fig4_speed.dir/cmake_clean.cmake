file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_speed.dir/bench/bench_fig4_speed.cpp.o"
  "CMakeFiles/bench_fig4_speed.dir/bench/bench_fig4_speed.cpp.o.d"
  "bench/bench_fig4_speed"
  "bench/bench_fig4_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
