# Empty dependencies file for bench_fig4_speed.
# This may be replaced when dependencies are built.
