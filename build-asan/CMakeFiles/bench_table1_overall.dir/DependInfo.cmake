
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_overall.cpp" "CMakeFiles/bench_table1_overall.dir/bench/bench_table1_overall.cpp.o" "gcc" "CMakeFiles/bench_table1_overall.dir/bench/bench_table1_overall.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/baseline/CMakeFiles/ns_baseline.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/ns_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workload/CMakeFiles/ns_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/peer/CMakeFiles/ns_peer.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/control/CMakeFiles/ns_control.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/edge/CMakeFiles/ns_edge.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/accounting/CMakeFiles/ns_accounting.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/analysis/CMakeFiles/ns_analysis.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/swarm/CMakeFiles/ns_swarm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
