# Empty dependencies file for ns_peer.
# This may be replaced when dependencies are built.
