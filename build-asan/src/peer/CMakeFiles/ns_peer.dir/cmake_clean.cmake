file(REMOVE_RECURSE
  "CMakeFiles/ns_peer.dir/netsession_client.cpp.o"
  "CMakeFiles/ns_peer.dir/netsession_client.cpp.o.d"
  "CMakeFiles/ns_peer.dir/streaming.cpp.o"
  "CMakeFiles/ns_peer.dir/streaming.cpp.o.d"
  "libns_peer.a"
  "libns_peer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
