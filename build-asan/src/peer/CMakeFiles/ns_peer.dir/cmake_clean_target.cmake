file(REMOVE_RECURSE
  "libns_peer.a"
)
