# Empty dependencies file for ns_accounting.
# This may be replaced when dependencies are built.
