file(REMOVE_RECURSE
  "CMakeFiles/ns_accounting.dir/accounting.cpp.o"
  "CMakeFiles/ns_accounting.dir/accounting.cpp.o.d"
  "libns_accounting.a"
  "libns_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
