file(REMOVE_RECURSE
  "libns_accounting.a"
)
