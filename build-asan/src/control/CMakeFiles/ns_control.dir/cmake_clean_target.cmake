file(REMOVE_RECURSE
  "libns_control.a"
)
