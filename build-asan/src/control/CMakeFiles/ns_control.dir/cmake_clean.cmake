file(REMOVE_RECURSE
  "CMakeFiles/ns_control.dir/connection_node.cpp.o"
  "CMakeFiles/ns_control.dir/connection_node.cpp.o.d"
  "CMakeFiles/ns_control.dir/control_plane.cpp.o"
  "CMakeFiles/ns_control.dir/control_plane.cpp.o.d"
  "CMakeFiles/ns_control.dir/database_node.cpp.o"
  "CMakeFiles/ns_control.dir/database_node.cpp.o.d"
  "CMakeFiles/ns_control.dir/directory.cpp.o"
  "CMakeFiles/ns_control.dir/directory.cpp.o.d"
  "CMakeFiles/ns_control.dir/monitoring.cpp.o"
  "CMakeFiles/ns_control.dir/monitoring.cpp.o.d"
  "CMakeFiles/ns_control.dir/stun.cpp.o"
  "CMakeFiles/ns_control.dir/stun.cpp.o.d"
  "libns_control.a"
  "libns_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
