# Empty compiler generated dependencies file for ns_control.
# This may be replaced when dependencies are built.
