# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("swarm")
subdirs("edge")
subdirs("control")
subdirs("peer")
subdirs("accounting")
subdirs("trace")
subdirs("analysis")
subdirs("workload")
subdirs("core")
subdirs("baseline")
