file(REMOVE_RECURSE
  "CMakeFiles/ns_core.dir/scenario_io.cpp.o"
  "CMakeFiles/ns_core.dir/scenario_io.cpp.o.d"
  "CMakeFiles/ns_core.dir/simulation.cpp.o"
  "CMakeFiles/ns_core.dir/simulation.cpp.o.d"
  "libns_core.a"
  "libns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
