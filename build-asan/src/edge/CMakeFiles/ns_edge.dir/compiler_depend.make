# Empty compiler generated dependencies file for ns_edge.
# This may be replaced when dependencies are built.
