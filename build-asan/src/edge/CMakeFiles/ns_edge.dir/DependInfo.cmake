
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/auth.cpp" "src/edge/CMakeFiles/ns_edge.dir/auth.cpp.o" "gcc" "src/edge/CMakeFiles/ns_edge.dir/auth.cpp.o.d"
  "/root/repo/src/edge/catalog.cpp" "src/edge/CMakeFiles/ns_edge.dir/catalog.cpp.o" "gcc" "src/edge/CMakeFiles/ns_edge.dir/catalog.cpp.o.d"
  "/root/repo/src/edge/edge_network.cpp" "src/edge/CMakeFiles/ns_edge.dir/edge_network.cpp.o" "gcc" "src/edge/CMakeFiles/ns_edge.dir/edge_network.cpp.o.d"
  "/root/repo/src/edge/edge_server.cpp" "src/edge/CMakeFiles/ns_edge.dir/edge_server.cpp.o" "gcc" "src/edge/CMakeFiles/ns_edge.dir/edge_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/swarm/CMakeFiles/ns_swarm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
