file(REMOVE_RECURSE
  "libns_edge.a"
)
