file(REMOVE_RECURSE
  "CMakeFiles/ns_edge.dir/auth.cpp.o"
  "CMakeFiles/ns_edge.dir/auth.cpp.o.d"
  "CMakeFiles/ns_edge.dir/catalog.cpp.o"
  "CMakeFiles/ns_edge.dir/catalog.cpp.o.d"
  "CMakeFiles/ns_edge.dir/edge_network.cpp.o"
  "CMakeFiles/ns_edge.dir/edge_network.cpp.o.d"
  "CMakeFiles/ns_edge.dir/edge_server.cpp.o"
  "CMakeFiles/ns_edge.dir/edge_server.cpp.o.d"
  "libns_edge.a"
  "libns_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
