file(REMOVE_RECURSE
  "CMakeFiles/ns_workload.dir/behavior.cpp.o"
  "CMakeFiles/ns_workload.dir/behavior.cpp.o.d"
  "CMakeFiles/ns_workload.dir/distributions.cpp.o"
  "CMakeFiles/ns_workload.dir/distributions.cpp.o.d"
  "CMakeFiles/ns_workload.dir/population.cpp.o"
  "CMakeFiles/ns_workload.dir/population.cpp.o.d"
  "CMakeFiles/ns_workload.dir/providers.cpp.o"
  "CMakeFiles/ns_workload.dir/providers.cpp.o.d"
  "libns_workload.a"
  "libns_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
