file(REMOVE_RECURSE
  "libns_workload.a"
)
