# Empty compiler generated dependencies file for ns_workload.
# This may be replaced when dependencies are built.
