# Empty dependencies file for ns_net.
# This may be replaced when dependencies are built.
