file(REMOVE_RECURSE
  "libns_net.a"
)
