file(REMOVE_RECURSE
  "CMakeFiles/ns_net.dir/as_graph.cpp.o"
  "CMakeFiles/ns_net.dir/as_graph.cpp.o.d"
  "CMakeFiles/ns_net.dir/flow.cpp.o"
  "CMakeFiles/ns_net.dir/flow.cpp.o.d"
  "CMakeFiles/ns_net.dir/geo.cpp.o"
  "CMakeFiles/ns_net.dir/geo.cpp.o.d"
  "CMakeFiles/ns_net.dir/nat.cpp.o"
  "CMakeFiles/ns_net.dir/nat.cpp.o.d"
  "CMakeFiles/ns_net.dir/world.cpp.o"
  "CMakeFiles/ns_net.dir/world.cpp.o.d"
  "CMakeFiles/ns_net.dir/world_data.cpp.o"
  "CMakeFiles/ns_net.dir/world_data.cpp.o.d"
  "libns_net.a"
  "libns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
