file(REMOVE_RECURSE
  "CMakeFiles/ns_common.dir/format.cpp.o"
  "CMakeFiles/ns_common.dir/format.cpp.o.d"
  "CMakeFiles/ns_common.dir/rng.cpp.o"
  "CMakeFiles/ns_common.dir/rng.cpp.o.d"
  "CMakeFiles/ns_common.dir/sha256.cpp.o"
  "CMakeFiles/ns_common.dir/sha256.cpp.o.d"
  "libns_common.a"
  "libns_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
