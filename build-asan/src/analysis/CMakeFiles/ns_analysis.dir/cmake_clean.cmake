file(REMOVE_RECURSE
  "CMakeFiles/ns_analysis.dir/export.cpp.o"
  "CMakeFiles/ns_analysis.dir/export.cpp.o.d"
  "CMakeFiles/ns_analysis.dir/guid_graph.cpp.o"
  "CMakeFiles/ns_analysis.dir/guid_graph.cpp.o.d"
  "CMakeFiles/ns_analysis.dir/login_index.cpp.o"
  "CMakeFiles/ns_analysis.dir/login_index.cpp.o.d"
  "CMakeFiles/ns_analysis.dir/measurement.cpp.o"
  "CMakeFiles/ns_analysis.dir/measurement.cpp.o.d"
  "CMakeFiles/ns_analysis.dir/stats.cpp.o"
  "CMakeFiles/ns_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/ns_analysis.dir/table.cpp.o"
  "CMakeFiles/ns_analysis.dir/table.cpp.o.d"
  "libns_analysis.a"
  "libns_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
