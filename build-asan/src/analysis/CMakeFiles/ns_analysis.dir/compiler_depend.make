# Empty compiler generated dependencies file for ns_analysis.
# This may be replaced when dependencies are built.
