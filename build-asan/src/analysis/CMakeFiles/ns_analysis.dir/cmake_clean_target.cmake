file(REMOVE_RECURSE
  "libns_analysis.a"
)
