file(REMOVE_RECURSE
  "CMakeFiles/ns_baseline.dir/pure_p2p.cpp.o"
  "CMakeFiles/ns_baseline.dir/pure_p2p.cpp.o.d"
  "libns_baseline.a"
  "libns_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
