file(REMOVE_RECURSE
  "libns_baseline.a"
)
