# Empty compiler generated dependencies file for ns_baseline.
# This may be replaced when dependencies are built.
