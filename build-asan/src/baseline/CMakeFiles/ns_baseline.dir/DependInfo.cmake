
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/pure_p2p.cpp" "src/baseline/CMakeFiles/ns_baseline.dir/pure_p2p.cpp.o" "gcc" "src/baseline/CMakeFiles/ns_baseline.dir/pure_p2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/swarm/CMakeFiles/ns_swarm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
