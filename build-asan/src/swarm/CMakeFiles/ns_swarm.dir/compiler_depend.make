# Empty compiler generated dependencies file for ns_swarm.
# This may be replaced when dependencies are built.
