file(REMOVE_RECURSE
  "libns_swarm.a"
)
