file(REMOVE_RECURSE
  "CMakeFiles/ns_swarm.dir/content.cpp.o"
  "CMakeFiles/ns_swarm.dir/content.cpp.o.d"
  "CMakeFiles/ns_swarm.dir/picker.cpp.o"
  "CMakeFiles/ns_swarm.dir/picker.cpp.o.d"
  "libns_swarm.a"
  "libns_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
