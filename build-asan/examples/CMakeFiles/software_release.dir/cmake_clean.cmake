file(REMOVE_RECURSE
  "CMakeFiles/software_release.dir/software_release.cpp.o"
  "CMakeFiles/software_release.dir/software_release.cpp.o.d"
  "software_release"
  "software_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
