# Empty compiler generated dependencies file for software_release.
# This may be replaced when dependencies are built.
