file(REMOVE_RECURSE
  "CMakeFiles/cdn_failover.dir/cdn_failover.cpp.o"
  "CMakeFiles/cdn_failover.dir/cdn_failover.cpp.o.d"
  "cdn_failover"
  "cdn_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
