# Empty compiler generated dependencies file for cdn_failover.
# This may be replaced when dependencies are built.
