file(REMOVE_RECURSE
  "CMakeFiles/isp_traffic_study.dir/isp_traffic_study.cpp.o"
  "CMakeFiles/isp_traffic_study.dir/isp_traffic_study.cpp.o.d"
  "isp_traffic_study"
  "isp_traffic_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_traffic_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
