# Empty dependencies file for isp_traffic_study.
# This may be replaced when dependencies are built.
