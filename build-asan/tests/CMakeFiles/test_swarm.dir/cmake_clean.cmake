file(REMOVE_RECURSE
  "CMakeFiles/test_swarm.dir/swarm/test_content.cpp.o"
  "CMakeFiles/test_swarm.dir/swarm/test_content.cpp.o.d"
  "CMakeFiles/test_swarm.dir/swarm/test_picker.cpp.o"
  "CMakeFiles/test_swarm.dir/swarm/test_picker.cpp.o.d"
  "test_swarm"
  "test_swarm.pdb"
  "test_swarm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
