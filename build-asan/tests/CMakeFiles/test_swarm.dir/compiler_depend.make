# Empty compiler generated dependencies file for test_swarm.
# This may be replaced when dependencies are built.
