file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_as_graph.cpp.o"
  "CMakeFiles/test_net.dir/net/test_as_graph.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_flow.cpp.o"
  "CMakeFiles/test_net.dir/net/test_flow.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_flow_maxmin.cpp.o"
  "CMakeFiles/test_net.dir/net/test_flow_maxmin.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_geo.cpp.o"
  "CMakeFiles/test_net.dir/net/test_geo.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_nat.cpp.o"
  "CMakeFiles/test_net.dir/net/test_nat.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_world.cpp.o"
  "CMakeFiles/test_net.dir/net/test_world.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_world_data.cpp.o"
  "CMakeFiles/test_net.dir/net/test_world_data.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
