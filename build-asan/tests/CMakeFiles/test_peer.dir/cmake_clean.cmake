file(REMOVE_RECURSE
  "CMakeFiles/test_peer.dir/peer/test_client.cpp.o"
  "CMakeFiles/test_peer.dir/peer/test_client.cpp.o.d"
  "CMakeFiles/test_peer.dir/peer/test_streaming.cpp.o"
  "CMakeFiles/test_peer.dir/peer/test_streaming.cpp.o.d"
  "test_peer"
  "test_peer.pdb"
  "test_peer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
