# Empty dependencies file for test_peer.
# This may be replaced when dependencies are built.
