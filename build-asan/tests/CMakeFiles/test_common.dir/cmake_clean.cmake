file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_format.cpp.o"
  "CMakeFiles/test_common.dir/common/test_format.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_sha256.cpp.o"
  "CMakeFiles/test_common.dir/common/test_sha256.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_types.cpp.o"
  "CMakeFiles/test_common.dir/common/test_types.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
