// netsession_sim — run NetSession deployments from scenario files.
//
//   netsession_sim template <scenario.ini>          write a commented template
//   netsession_sim run <scenario.ini> [out.nstrace] run it; optionally save
//                                                   the trace data set
//
// The saved .nstrace can be inspected with `nstrace` or fed to the analysis
// pipeline.
#include <cstdio>
#include <string>

#include "analysis/measurement.hpp"
#include "common/format.hpp"
#include "core/scenario_io.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace netsession;

int usage() {
    std::fprintf(stderr, "usage: netsession_sim template <scenario.ini>\n"
                         "       netsession_sim run <scenario.ini> [out.nstrace]\n");
    return 2;
}

int cmd_run(const std::string& scenario_path, const std::string& out_path) {
    auto loaded = load_scenario(scenario_path);
    if (!loaded) {
        std::fprintf(stderr, "netsession_sim: %s\n", loaded.error().message.c_str());
        return 1;
    }
    const SimulationConfig config = loaded.value();
    std::printf("Scenario %s:\n%s\n", scenario_path.c_str(),
                describe_scenario(config).c_str());

    Simulation sim(config);
    sim.run();

    const auto& log = sim.trace();
    std::printf("Trace: %zu entries (%zu downloads, %zu logins, %zu transfers)\n",
                log.total_entries(), log.downloads().size(), log.logins().size(),
                log.transfers().size());
    const auto headline = analysis::headline_offload(log);
    std::printf("Peer efficiency %s, offload %s, p2p files %s\n",
                format_percent(headline.mean_peer_efficiency).c_str(),
                format_percent(headline.overall_offload).c_str(),
                format_percent(headline.p2p_enabled_file_fraction).c_str());
    const auto outcomes = analysis::outcome_stats(log);
    std::printf("Completion %s over %s terminal downloads\n",
                format_percent(outcomes.all.completed).c_str(),
                format_count(outcomes.all.n).c_str());

    if (!out_path.empty()) {
        trace::Dataset dataset;
        dataset.log = log;
        sim.geodb().for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
            dataset.geodb.register_ip(ip, rec);
        });
        if (!trace::save_dataset(dataset, out_path)) {
            std::fprintf(stderr, "netsession_sim: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::printf("Saved trace data set to %s (inspect with nstrace)\n", out_path.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string command = argv[1];
    if (command == "template") {
        if (!write_scenario_template(argv[2])) {
            std::fprintf(stderr, "netsession_sim: cannot write %s\n", argv[2]);
            return 1;
        }
        std::printf("Wrote scenario template to %s\n", argv[2]);
        return 0;
    }
    if (command == "run") return cmd_run(argv[2], argc > 3 ? argv[3] : "");
    return usage();
}
