#!/usr/bin/env bash
# CI driver: builds the tree in Release plus both sanitizer flavours and runs
# the test suite under each. The slab event engine and the flow network
# recycle slots and type-erase callbacks — precisely the code ASan/UBSan are
# for — so every change should pass all three before merging.
#
# Usage: tools/ci.sh [jobs]       (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Guard: build trees must never be committed. Anything under a build*/
# prefix showing up in the index means a stray `git add .` picked up
# artifacts (the CI flavours below create three such trees).
if git ls-files | grep -qE '^build[^/]*/'; then
    echo "ERROR: build artifacts are tracked by git:" >&2
    git ls-files | grep -E '^build[^/]*/' | head >&2
    exit 1
fi

run_flavour() {
    local name="$1" build_dir="$2"
    shift 2
    echo "==== [$name] configure ===="
    cmake -B "$build_dir" -S . "$@" >/dev/null
    echo "==== [$name] build ===="
    cmake --build "$build_dir" -j "$JOBS"
    echo "==== [$name] ctest ===="
    (cd "$build_dir" && ctest --output-on-failure)
    # Fault injection exercises slot-recycling under cancellation storms
    # (failed servers cut flows, watchdogs cancel stale events) — exactly
    # what the sanitizers exist to catch. Re-run the robustness/fault suite
    # explicitly so a filter change in the main run can't silently drop it,
    # then smoke the shipped chaos scenario end to end.
    echo "==== [$name] fault/robustness focus ===="
    (cd "$build_dir" && ctest --output-on-failure -R 'Robustness|Fault|Chaos')
    # Observability + statistical fidelity focus: the registry/sampler unit
    # suite and the paper-distribution harness. Run explicitly in every
    # flavour — the sampler's type-erased ticks and the shared client
    # metrics block are exactly the kind of code the sanitizers exist for,
    # and a KS-bound drift must fail CI, not just a local run.
    echo "==== [$name] obs/fidelity focus ===="
    (cd "$build_dir" && ctest --output-on-failure -R 'Histogram|Counter|Gauge|Registry|Macros|Export|Sampler|FidelityRun|GoldenMetrics')
    # Arena/flat-hash focus: the memory layout under the whole event path
    # (docs/SIMULATOR.md "Memory layout"). The ASan flavour configures with
    # -DNS_ARENA_CHECKS=1, so this is also where the dangling-handle
    # generation checks actually execute under the sanitizer.
    echo "==== [$name] arena/flat-hash focus ===="
    (cd "$build_dir" && ctest --output-on-failure -R 'Arena|FlatHash|Directory')
    # Full-scale chaos scenario smoke: release flavour only (the sanitizer
    # flavours cover the same path via the reduced-scale Chaos ctest suite).
    if [ "$name" = release ]; then
        echo "==== [$name] chaos scenario smoke ===="
        local smoke_out="$build_dir/chaos_smoke.nstrace"
        "$build_dir/tools/netsession_sim" run scenarios/chaos_regional_outage.ini "$smoke_out"
        rm -f "$smoke_out"
        # 200k-peer scale smoke: the arena + flat-hash overhaul must keep a
        # 5x population inside a bounded footprint and a hard wall-clock
        # budget (`timeout` fails the leg if the run wedges or regresses).
        echo "==== [$name] 200k scale smoke ===="
        local scale_out="$build_dir/scale_smoke.nstrace"
        timeout "${NS_SCALE_BUDGET_SECONDS:-1800}" \
            "$build_dir/tools/netsession_sim" run scenarios/standard_200k.ini "$scale_out"
        rm -f "$scale_out"
        # Thread-count invariance smoke: the analysis pipeline must produce
        # byte-identical results whatever NS_THREADS says (docs/PARALLELISM.md).
        echo "==== [$name] thread-invariance focus ===="
        (cd "$build_dir" && ctest --output-on-failure -R 'ThreadInvariance|Parallel')
    fi
}

# The audit flavour compiles the runtime invariant auditor in (NS_AUDIT=ON)
# with violations fatal (NS_AUDIT_FATAL=ON) and runs the fault/integration
# surface under ASan: cross-layer contracts (byte conservation, directory
# consistency, flow capacity, stall bounds, arena accounting) are checked
# *while faults are live*, and any violation aborts the test. It finishes
# with a chaos-fuzz smoke: five campaign seeds, each run twice and the two
# traces compared byte-for-byte — the campaign determinism contract.
run_audit_flavour() {
    local build_dir=build-ci-audit
    echo "==== [audit] configure ===="
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNS_SANITIZE=address \
        -DNS_AUDIT=ON -DNS_AUDIT_FATAL=ON \
        -DCMAKE_CXX_FLAGS=-DNS_ARENA_CHECKS=1 >/dev/null
    echo "==== [audit] build ===="
    cmake --build "$build_dir" -j "$JOBS"
    echo "==== [audit] fault/integration focus (auditor fatal) ===="
    (cd "$build_dir" && ctest --output-on-failure \
        -R 'Audit|Fault|Chaos|Robustness|Simulation|Integration|Campaign|Recovery')
    echo "==== [audit] chaos-fuzz smoke (5 seeds, byte-identity) ===="
    local fuzz_dir="$build_dir/chaos_fuzz"
    mkdir -p "$fuzz_dir"
    for seed in 3 7 11 13 17; do
        local ini="$fuzz_dir/campaign_$seed.ini"
        {
            echo "seed = 42"
            echo "peers = 1500"
            echo "warmup_days = 1"
            echo "window_days = 4"
            echo "downloads_per_peer_per_month = 10"
            echo "campaign = seed=$seed waves=3 mean_concurrent=2 start=2 spacing=1 duration=0.15 fraction=0.15"
        } > "$ini"
        "$build_dir/tools/netsession_sim" run "$ini" "$fuzz_dir/a_$seed.nstrace" >/dev/null
        "$build_dir/tools/netsession_sim" run "$ini" "$fuzz_dir/b_$seed.nstrace" >/dev/null
        cmp "$fuzz_dir/a_$seed.nstrace" "$fuzz_dir/b_$seed.nstrace" \
            || { echo "ERROR: campaign seed=$seed is not deterministic" >&2; exit 1; }
        echo "  seed=$seed: traces byte-identical"
    done
    rm -rf "$fuzz_dir"
}

# The shard flavour proves the region-sharded simulation core
# (docs/PARALLELISM.md "The sharded simulation core") on two fronts:
#   1. under TSan, with NS_SIM_SHARDS=4 exported so every Simulation whose
#      scenario leaves `shards` unset runs on the windowed engine — the
#      barrier-batched flow refill round is the one place the sharded
#      deployment fans out onto the pool, exactly what TSan is for;
#   2. in Release, a double-run byte-identity smoke of the shipped chaos
#      campaign at shards=4 — faults, campaigns and the cross-shard outbox
#      path, compared with cmp like the audit flavour's fuzz smoke.
# The labelled suites (`ctest -L shard`) are the differential determinism
# tests and the sharded-scheduler property tests from tests/.
run_shard_flavour() {
    local tsan_dir=build-ci-tsan release_dir=build-ci-release
    echo "==== [shard] tsan labelled shard suites (NS_SIM_SHARDS=4) ===="
    (cd "$tsan_dir" && NS_SIM_SHARDS=4 ctest --output-on-failure -L shard)
    echo "==== [shard] tsan sim focus on the windowed engine (NS_SIM_SHARDS=4) ===="
    (cd "$tsan_dir" && NS_SIM_SHARDS=4 ctest --output-on-failure \
        -R 'Simulation|Sharded|Robustness|Chaos')
    echo "==== [shard] release double-run byte-identity (chaos_campaign.ini, shards=4) ===="
    local smoke_dir="$release_dir/shard_smoke"
    mkdir -p "$smoke_dir"
    { cat scenarios/chaos_campaign.ini; echo "shards = 4"; } > "$smoke_dir/campaign_s4.ini"
    "$release_dir/tools/netsession_sim" run "$smoke_dir/campaign_s4.ini" \
        "$smoke_dir/a.nstrace" >/dev/null
    "$release_dir/tools/netsession_sim" run "$smoke_dir/campaign_s4.ini" \
        "$smoke_dir/b.nstrace" >/dev/null
    cmp "$smoke_dir/a.nstrace" "$smoke_dir/b.nstrace" \
        || { echo "ERROR: shards=4 chaos campaign is not deterministic" >&2; exit 1; }
    echo "  shards=4: traces byte-identical"
    rm -rf "$smoke_dir"
}

# The scale flavour proves the hibernation memory diet (docs/SIMULATOR.md
# "Memory layout") end to end:
#   1. in Release, a 1M-peer smoke of scenarios/standard_1m.ini under a hard
#      wall-clock budget AND a peak-RSS ceiling — the whole point of demoting
#      offline peers to the cold store is that a million installations fit on
#      one box. The ceiling is read back from the kernel's VmHWM high-water
#      mark via /usr/bin/time -v (skipped with a warning if GNU time is not
#      installed);
#   2. under ASan with NS_ARENA_CHECKS=1 (the asan tree), the labelled
#      memdiet suites (`ctest -L memdiet`) — hibernate/rehydrate round-trips,
#      the hibernation-on/off trace differential, and the pool-handle
#      generation-wrap regressions, with every cold-blob read/write and pool
#      dereference instrumented.
run_scale_flavour() {
    local release_dir=build-ci-release asan_dir=build-ci-asan
    local ceiling_kib=$(( ${NS_SCALE_RSS_CEILING_MIB:-6144} * 1024 ))
    echo "==== [scale] release 1M-peer smoke (RSS ceiling ${NS_SCALE_RSS_CEILING_MIB:-6144} MiB) ===="
    local scale_out="$release_dir/scale_1m.nstrace"
    local time_log="$release_dir/scale_1m.time"
    if [ -x /usr/bin/time ] && /usr/bin/time -v true >/dev/null 2>&1; then
        timeout "${NS_SCALE_1M_BUDGET_SECONDS:-5400}" \
            /usr/bin/time -v -o "$time_log" \
            "$release_dir/tools/netsession_sim" run scenarios/standard_1m.ini "$scale_out"
        local peak_kib
        peak_kib=$(awk '/Maximum resident set size/ {print $NF}' "$time_log")
        echo "  1M smoke peak RSS: $(( peak_kib / 1024 )) MiB (ceiling $(( ceiling_kib / 1024 )) MiB)"
        if [ "$peak_kib" -gt "$ceiling_kib" ]; then
            echo "ERROR: 1M-peer run peak RSS ${peak_kib} KiB exceeds ceiling ${ceiling_kib} KiB" >&2
            exit 1
        fi
        rm -f "$time_log"
    else
        echo "  WARNING: GNU time not available; running 1M smoke without the RSS ceiling check"
        timeout "${NS_SCALE_1M_BUDGET_SECONDS:-5400}" \
            "$release_dir/tools/netsession_sim" run scenarios/standard_1m.ini "$scale_out"
    fi
    rm -f "$scale_out"
    echo "==== [scale] release labelled memdiet suites ===="
    (cd "$release_dir" && ctest --output-on-failure -L memdiet)
    echo "==== [scale] asan (NS_ARENA_CHECKS=1) labelled memdiet suites ===="
    (cd "$asan_dir" && ctest --output-on-failure -L memdiet)
}

# The TSan flavour builds the whole tree but focuses ctest on the suites that
# actually go multi-threaded: the parallel runtime, the analysis pipeline it
# drives, and the obs/fidelity harnesses that consume pipeline output. TSan's
# ~10x slowdown makes the full 500-test suite wasteful when everything
# outside analysis/ is single-threaded by design.
run_tsan_flavour() {
    local build_dir=build-ci-tsan
    echo "==== [tsan] configure ===="
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNS_SANITIZE=thread >/dev/null
    echo "==== [tsan] build ===="
    cmake --build "$build_dir" -j "$JOBS"
    echo "==== [tsan] parallel/analysis/obs/fidelity focus ===="
    (cd "$build_dir" && NS_THREADS=4 ctest --output-on-failure \
        -R 'Parallel|ThreadInvariance|Stats|GuidGraph|Measurement|Serialize|Histogram|Counter|Gauge|Registry|Export|Sampler|FidelityRun|GoldenMetrics')
}

run_flavour release build-ci-release -DCMAKE_BUILD_TYPE=Release
# NS_ARENA_CHECKS=1: RelWithDebInfo defines NDEBUG, which would compile the
# arena's dangling-handle generation checks out — force them on so ASan runs
# with every pool dereference verified.
run_flavour asan build-ci-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNS_SANITIZE=address \
    -DCMAKE_CXX_FLAGS=-DNS_ARENA_CHECKS=1
run_flavour ubsan build-ci-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNS_SANITIZE=undefined
run_audit_flavour
run_tsan_flavour
run_shard_flavour  # reuses the tsan + release trees built above
run_scale_flavour  # reuses the release + asan trees built above

echo "==== CI: all flavours passed ===="
