// nstrace — inspect and export NetSession trace data sets (.nstrace files
// written by trace::save_dataset; the bench cache produces them too).
//
//   nstrace summary   <file>            overall statistics (Table 1 style)
//   nstrace headline  <file>            §5.1 offload numbers
//   nstrace providers <file>            per-provider downloads/bytes
//   nstrace objects   <file> [n]        top-n objects by downloads
//   nstrace outcomes  <file>            §5.2 outcome breakdown
//   nstrace faults    <file>            §3.8 degradation telemetry counters
//   nstrace recovery  <file>            per-fault onset/restore/time-to-recover (v8 timeline)
//   nstrace metrics   <file> [series]   v6 metric time-series (sampler output)
//   nstrace guids     <file>            Fig 12 secondary-GUID graph patterns
//   nstrace tsv       <file> <out.tsv>  dump the download log as TSV
//   nstrace export    <file> <dir>      write plot-ready figure data + gnuplot script
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "analysis/export.hpp"
#include "analysis/guid_graph.hpp"
#include "analysis/measurement.hpp"
#include "analysis/recovery.hpp"
#include "analysis/table.hpp"
#include "common/format.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace netsession;

int usage() {
    std::fprintf(stderr,
                 "usage: nstrace <summary|headline|providers|objects|outcomes|faults|recovery|"
                 "metrics|guids|tsv|export> <file> [args]\n");
    return 2;
}

void cmd_summary(const trace::Dataset& dataset) {
    const auto stats = analysis::overall_stats(dataset.log, dataset.geodb);
    analysis::TextTable table({"Statistic", "Value"});
    table.add_row({"Log entries", format_count(static_cast<std::int64_t>(stats.log_entries))});
    table.add_row({"GUIDs", format_count(static_cast<std::int64_t>(stats.guids))});
    table.add_row({"Distinct URLs", format_count(static_cast<std::int64_t>(stats.distinct_urls))});
    table.add_row({"Distinct IPs", format_count(static_cast<std::int64_t>(stats.distinct_ips))});
    table.add_row(
        {"Downloads initiated", format_count(static_cast<std::int64_t>(stats.downloads_initiated))});
    table.add_row(
        {"Distinct locations", format_count(static_cast<std::int64_t>(stats.distinct_locations))});
    table.add_row({"Distinct ASes", format_count(static_cast<std::int64_t>(stats.distinct_ases))});
    table.add_row(
        {"Distinct countries", format_count(static_cast<std::int64_t>(stats.distinct_countries))});
    std::printf("%s", table.render().c_str());
}

void cmd_headline(const trace::Dataset& dataset) {
    const auto h = analysis::headline_offload(dataset.log);
    std::printf("p2p-enabled files:          %s\n",
                format_percent(h.p2p_enabled_file_fraction).c_str());
    std::printf("bytes in p2p-enabled files: %s\n",
                format_percent(h.p2p_enabled_byte_fraction).c_str());
    std::printf("mean peer efficiency:       %s\n",
                format_percent(h.mean_peer_efficiency).c_str());
    std::printf("byte offload to peers:      %s\n", format_percent(h.overall_offload).c_str());
}

void cmd_faults(const trace::Dataset& dataset) {
    const auto d = analysis::degradation_stats(dataset.log);
    analysis::TextTable table({"Degradation", "Count"});
    table.add_row({"Edge stalls", format_count(d.edge_stalls)});
    table.add_row({"Edge re-maps", format_count(d.edge_remaps)});
    table.add_row({"Peer stalls", format_count(d.peer_stalls)});
    table.add_row({"Sources blacklisted", format_count(d.sources_blacklisted)});
    table.add_row({"Query timeouts", format_count(d.query_timeouts)});
    table.add_row({"Login timeouts", format_count(d.login_timeouts)});
    table.add_row({"STUN timeouts", format_count(d.stun_timeouts)});
    // Incidents, not records: a re-map rides on its stall record and is not
    // counted again (see analysis::DegradationStats::total).
    table.add_row({"Total incidents", format_count(d.total)});
    table.add_row({"Affected clients", format_count(d.affected_clients)});
    std::printf("%s", table.render().c_str());
}

void cmd_recovery(const trace::Dataset& dataset) {
    const auto report = analysis::recovery_report(dataset.log);
    if (report.faults.empty()) {
        std::printf("no fault timeline in this trace (pre-v8 data or an undisturbed run)\n");
        return;
    }
    const auto hours = [](sim::SimTime t) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", t.seconds() / 3600.0);
        return std::string(buf);
    };
    const auto ttr = [](double h) {
        if (h < 0.0) return std::string("never");
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", h);
        return std::string(buf);
    };
    analysis::TextTable table({"#", "Fault", "Onset(h)", "Restore(h)", "TTR(h)", "Min delivery",
                               "Degradations", "Blacklist"});
    for (const auto& f : report.faults) {
        if (!f.evaluable) {
            table.add_row({format_count(f.index), std::string(analysis::to_string(f.kind)),
                           hours(f.onset), "-", "-", "-", "-", "-"});
            continue;
        }
        table.add_row({format_count(f.index), std::string(analysis::to_string(f.kind)),
                       hours(f.onset), hours(f.restore), ttr(f.recover_hours),
                       format_percent(f.min_delivery_during), format_count(f.degradations),
                       format_count(f.blacklist_churn)});
    }
    std::printf("%s", table.render().c_str());
    for (const auto& f : report.faults) {
        if (f.evaluable && f.kind == analysis::TracedFaultKind::cn_outage &&
            f.login_drain_hours >= 0.0)
            std::printf("fault #%u: re-login storm drained %.1f h after CN restore\n", f.index,
                        f.login_drain_hours);
        if (f.evaluable && f.kind == analysis::TracedFaultKind::dn_outage &&
            f.readd_drain_hours >= 0.0)
            std::printf("fault #%u: RE-ADD fan-out drained %.1f h after DN restore\n", f.index,
                        f.readd_drain_hours);
    }
    std::printf("%s; worst time-to-recover %.1f h\n",
                report.all_recovered ? "all evaluable faults recovered"
                                     : "NOT all faults recovered within the horizon",
                report.worst_recover_hours);
}

void cmd_metrics(const trace::Dataset& dataset, const char* series) {
    const auto& names = dataset.log.metric_names();
    const auto& points = dataset.log.metric_points();
    if (names.empty() || points.empty()) {
        std::printf("no metric samples in this trace (pre-v6 data, NS_METRICS=OFF build, or "
                    "sampling disabled)\n");
        return;
    }
    if (series != nullptr) {
        // Dump one series as "hours<TAB>value" rows (plot-ready).
        std::uint32_t id = 0;
        bool found = false;
        for (std::uint32_t i = 0; i < names.size(); ++i)
            if (names[i] == series) {
                id = i;
                found = true;
                break;
            }
        if (!found) {
            std::fprintf(stderr, "nstrace: no metric series named '%s'\n", series);
            return;
        }
        std::printf("# hours\t%s\n", series);
        for (const auto& p : points)
            if (p.metric == id) std::printf("%.3f\t%.17g\n", p.time.seconds() / 3600.0, p.value);
        return;
    }
    // Per-series summary over the whole time range.
    struct Agg {
        std::int64_t n = 0;
        double first = 0, last = 0, min = 0, max = 0;
    };
    std::vector<Agg> aggs(names.size());
    for (const auto& p : points) {
        Agg& a = aggs[p.metric];
        if (a.n == 0) {
            a.first = a.min = a.max = p.value;
        } else {
            a.min = std::min(a.min, p.value);
            a.max = std::max(a.max, p.value);
        }
        a.last = p.value;
        ++a.n;
    }
    analysis::TextTable table({"Series", "Samples", "First", "Last", "Min", "Max"});
    const auto fmt = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return std::string(buf);
    };
    for (std::size_t i = 0; i < names.size(); ++i) {
        const Agg& a = aggs[i];
        if (a.n == 0) continue;
        table.add_row({names[i], format_count(a.n), fmt(a.first), fmt(a.last), fmt(a.min),
                       fmt(a.max)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("(use `nstrace metrics <file> <series>` to dump one series)\n");
}

void cmd_providers(const trace::Dataset& dataset) {
    struct Row {
        std::int64_t downloads = 0;
        Bytes infra = 0, peers = 0;
    };
    std::map<std::uint32_t, Row> rows;
    for (const auto& d : dataset.log.downloads()) {
        Row& r = rows[d.cp_code.value];
        ++r.downloads;
        r.infra += d.bytes_from_infrastructure;
        r.peers += d.bytes_from_peers;
    }
    analysis::TextTable table({"CP code", "Downloads", "Infra bytes", "Peer bytes", "Offload"});
    for (const auto& [cp, r] : rows) {
        const Bytes total = r.infra + r.peers;
        table.add_row({format_count(cp), format_count(r.downloads), format_bytes(r.infra),
                       format_bytes(r.peers),
                       total == 0 ? "-"
                                  : format_percent(static_cast<double>(r.peers) /
                                                   static_cast<double>(total))});
    }
    std::printf("%s", table.render().c_str());
}

void cmd_objects(const trace::Dataset& dataset, int top) {
    struct Row {
        std::int64_t downloads = 0;
        Bytes size = 0, peers = 0, total = 0;
        bool p2p = false;
    };
    std::map<std::uint64_t, Row> rows;
    for (const auto& d : dataset.log.downloads()) {
        Row& r = rows[d.url_hash];
        ++r.downloads;
        r.size = d.object_size;
        r.peers += d.bytes_from_peers;
        r.total += d.total_bytes();
        r.p2p |= d.p2p_enabled;
    }
    std::vector<std::pair<std::int64_t, std::uint64_t>> ranked;
    for (const auto& [url, r] : rows) ranked.emplace_back(r.downloads, url);
    std::sort(ranked.rbegin(), ranked.rend());
    analysis::TextTable table({"URL hash", "Downloads", "Size", "p2p", "Peer share"});
    int shown = 0;
    for (const auto& [n, url] : ranked) {
        if (shown++ >= top) break;
        const Row& r = rows[url];
        char hex[24];
        std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(url));
        table.add_row({hex, format_count(n), format_bytes(r.size), r.p2p ? "yes" : "no",
                       r.total == 0 ? "-"
                                    : format_percent(static_cast<double>(r.peers) /
                                                     static_cast<double>(r.total))});
    }
    std::printf("%s", table.render().c_str());
}

void cmd_outcomes(const trace::Dataset& dataset) {
    const auto stats = analysis::outcome_stats(dataset.log);
    analysis::TextTable table(
        {"Class", "n", "Completed", "Failed(sys)", "Failed(other)", "Aborted"});
    const auto add = [&](const char* name, const analysis::OutcomeStats::Class& c) {
        table.add_row({name, format_count(c.n), format_percent(c.completed),
                       format_percent(c.failed_system), format_percent(c.failed_other),
                       format_percent(c.aborted)});
    };
    add("Infrastructure-only", stats.infra_only);
    add("Peer-assisted", stats.peer_assisted);
    add("All", stats.all);
    std::printf("%s", table.render().c_str());
}

void cmd_guids(const trace::Dataset& dataset) {
    const auto stats = analysis::classify_guid_graphs(dataset.log);
    std::printf("graphs (>=3 vertices): %s\n", format_count(stats.graphs).c_str());
    std::printf("linear chains:         %s (%s)\n", format_count(stats.linear_chains).c_str(),
                format_percent(stats.linear_fraction()).c_str());
    std::printf("long + short branch:   %s\n", format_count(stats.long_plus_short).c_str());
    std::printf("two long branches:     %s\n", format_count(stats.two_long_branches).c_str());
    std::printf("several branches:      %s\n", format_count(stats.several_branches).c_str());
    std::printf("irregular:             %s\n", format_count(stats.irregular).c_str());
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string command = argv[1];
    const std::string path = argv[2];

    trace::Dataset dataset;
    if (!trace::load_dataset(dataset, path)) {
        std::fprintf(stderr, "nstrace: cannot load '%s' (missing, corrupt, or wrong version)\n",
                     path.c_str());
        return 1;
    }

    if (command == "summary") {
        cmd_summary(dataset);
    } else if (command == "headline") {
        cmd_headline(dataset);
    } else if (command == "providers") {
        cmd_providers(dataset);
    } else if (command == "objects") {
        cmd_objects(dataset, argc > 3 ? std::atoi(argv[3]) : 20);
    } else if (command == "outcomes") {
        cmd_outcomes(dataset);
    } else if (command == "faults") {
        cmd_faults(dataset);
    } else if (command == "recovery") {
        cmd_recovery(dataset);
    } else if (command == "metrics") {
        cmd_metrics(dataset, argc > 3 ? argv[3] : nullptr);
    } else if (command == "guids") {
        cmd_guids(dataset);
    } else if (command == "tsv") {
        if (argc < 4) return usage();
        const auto rows = dataset.log.write_downloads_tsv(argv[3]);
        std::printf("wrote %zu download rows to %s\n", rows, argv[3]);
    } else if (command == "export") {
        if (argc < 4) return usage();
        const auto files = analysis::export_figure_data(dataset, nullptr, argv[3]);
        if (files == 0) {
            std::fprintf(stderr, "nstrace: export failed\n");
            return 1;
        }
        std::printf("wrote %zu figure files to %s (render with: gnuplot plot_all.gp)\n", files,
                    argv[3]);
    } else {
        return usage();
    }
    return 0;
}
